//! ALT → higraph construction (the paper's Fig 2a → Fig 2b step).
//!
//! Scopes represented as *nodes* in the ALT become *regions*; attribute
//! references become edges between attribute cells (§2.2). Table nodes
//! accumulate exactly the attribute cells the query mentions — like the
//! paper's diagrams, which show only the attributes that participate.

use crate::model::*;
use arc_core::ast::*;

/// Build the higraph of a query collection.
pub fn build_collection(c: &Collection) -> Higraph {
    let mut b = Builder::new();
    let canvas = b.hg.canvas();
    b.collection(c, canvas);
    b.hg
}

/// Build the higraph of a boolean sentence (Fig 9b/9d).
pub fn build_sentence(f: &Formula) -> Higraph {
    let mut b = Builder::new();
    let canvas = b.hg.canvas();
    b.formula(f, canvas);
    b.hg
}

struct Builder {
    hg: Higraph,
    /// Visible range variables: (var, table node).
    vars: Vec<(String, NodeId)>,
    /// Visible heads: (head name, head-table node).
    heads: Vec<(String, NodeId)>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            hg: Higraph::new(),
            vars: Vec::new(),
            heads: Vec::new(),
        }
    }

    fn collection(&mut self, c: &Collection, parent: NodeId) -> NodeId {
        // One collection region per disjunct, like the paper's Fig 10b
        // (recursion drawn as two side-by-side diagrams).
        let disjuncts: Vec<&Formula> = match &c.body {
            Formula::Or(fs) if !fs.is_empty() => fs.iter().collect(),
            other => vec![other],
        };
        let mut first_region = 0;
        for (i, branch) in disjuncts.iter().enumerate() {
            let region = self.hg.add_node(
                parent,
                NodeKind::Collection {
                    name: c.head.relation.clone(),
                },
            );
            if i == 0 {
                first_region = region;
            }
            let head_table = self.hg.add_node(
                region,
                NodeKind::Table {
                    relation: c.head.relation.clone(),
                    var: String::new(),
                    attrs: c
                        .head
                        .attrs
                        .iter()
                        .map(|a| AttrCell {
                            attr: a.clone(),
                            grouped: false,
                        })
                        .collect(),
                    is_head: true,
                },
            );
            self.heads.push((c.head.relation.clone(), head_table));
            self.formula(branch, region);
            self.heads.pop();
        }
        first_region
    }

    fn formula(&mut self, f: &Formula, region: NodeId) {
        match f {
            Formula::Quant(q) => self.quant(q, region),
            Formula::And(fs) => {
                for sub in fs {
                    self.formula(sub, region);
                }
            }
            Formula::Or(fs) => {
                // Nested disjunction: one sibling region per branch
                // (simplified vs. the anchor-relation treatment of [28]).
                for sub in fs {
                    let branch = self
                        .hg
                        .add_node(region, NodeKind::Scope { grouping: false });
                    self.formula(sub, branch);
                }
            }
            Formula::Not(inner) => {
                let neg = self.hg.add_node(region, NodeKind::Negation);
                self.formula(inner, neg);
            }
            Formula::Pred(p) => self.predicate(p, region),
        }
    }

    fn quant(&mut self, q: &Quant, region: NodeId) {
        let scope = self.hg.add_node(
            region,
            NodeKind::Scope {
                grouping: q.grouping.is_some(),
            },
        );
        let base = self.vars.len();
        for b in &q.bindings {
            match &b.source {
                BindingSource::Named(rel) => {
                    let table = self.hg.add_node(
                        scope,
                        NodeKind::Table {
                            relation: rel.clone(),
                            var: b.var.clone(),
                            attrs: Vec::new(),
                            is_head: false,
                        },
                    );
                    self.vars.push((b.var.clone(), table));
                }
                BindingSource::Collection(c) => {
                    // The nested collection's head table is the variable's
                    // anchor (Fig 5c: edges leave X's cells); it "exists on
                    // the Canvas as an independent topological entity".
                    let sub_region = self.collection(c, scope);
                    let head_table = self.hg.nodes[sub_region]
                        .children
                        .first()
                        .copied()
                        .expect("collection region has a head table");
                    self.vars.push((b.var.clone(), head_table));
                }
            }
        }
        // Grouping keys: shade the cells (Fig 4b).
        if let Some(g) = &q.grouping {
            for key in &g.keys {
                if let Some(table) = self.lookup_var(&key.var) {
                    self.ensure_cell(table, &key.attr, true);
                }
            }
        }
        // Outer-join optionality markers (Fig 12's empty circle).
        if let Some(jt) = &q.join {
            self.join_markers(jt);
        }
        self.formula(&q.body, scope);
        self.vars.truncate(base);
    }

    fn join_markers(&mut self, jt: &JoinTree) {
        match jt {
            JoinTree::Var(_) | JoinTree::Lit(_) | JoinTree::Inner(_) => {
                if let JoinTree::Inner(children) = jt {
                    for c in children {
                        self.join_markers(c);
                    }
                }
            }
            JoinTree::Left(l, r) => {
                self.mark_optional(l, r, false);
                self.join_markers(l);
                self.join_markers(r);
            }
            JoinTree::Full(l, r) => {
                self.mark_optional(l, r, true);
                self.join_markers(l);
                self.join_markers(r);
            }
        }
    }

    fn mark_optional(&mut self, l: &JoinTree, r: &JoinTree, both: bool) {
        let anchor = l.vars().first().and_then(|v| self.lookup_var(v));
        let optional: Vec<NodeId> = r.vars().iter().filter_map(|v| self.lookup_var(v)).collect();
        if let Some(a) = anchor {
            for t in optional {
                self.hg.add_edge(
                    Port {
                        node: a,
                        attr: None,
                    },
                    Port {
                        node: t,
                        attr: None,
                    },
                    EdgeKind::OuterOptional,
                );
            }
            if both {
                // Full join: the left side is optional too; mark it from
                // the first right var.
                if let Some(rv) = r.vars().first().and_then(|v| self.lookup_var(v)) {
                    for v in l.vars() {
                        if let Some(t) = self.lookup_var(v) {
                            self.hg.add_edge(
                                Port {
                                    node: rv,
                                    attr: None,
                                },
                                Port {
                                    node: t,
                                    attr: None,
                                },
                                EdgeKind::OuterOptional,
                            );
                        }
                    }
                }
            }
        }
    }

    fn lookup_var(&self, var: &str) -> Option<NodeId> {
        self.vars
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, id)| *id)
    }

    fn lookup_head(&self, name: &str) -> Option<NodeId> {
        self.heads
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
    }

    fn ensure_cell(&mut self, table: NodeId, attr: &str, grouped: bool) {
        if let NodeKind::Table { attrs, .. } = &mut self.hg.nodes[table].kind {
            match attrs.iter_mut().find(|c| c.attr == attr) {
                Some(cell) => cell.grouped |= grouped,
                None => attrs.push(AttrCell {
                    attr: attr.to_string(),
                    grouped,
                }),
            }
        }
    }

    /// Resolve a scalar to an edge port, materializing constants and
    /// composite expressions as nodes in `region`.
    fn port(&mut self, s: &Scalar, region: NodeId) -> Port {
        match s {
            Scalar::Attr(a) => {
                if let Some(table) = self.lookup_var(&a.var) {
                    self.ensure_cell(table, &a.attr, false);
                    return Port {
                        node: table,
                        attr: Some(a.attr.clone()),
                    };
                }
                if let Some(head) = self.lookup_head(&a.var) {
                    return Port {
                        node: head,
                        attr: Some(a.attr.clone()),
                    };
                }
                // Unbound (binder reports it); anchor at a constant node.
                let node = self.hg.add_node(
                    region,
                    NodeKind::Const {
                        value: arc_core::value::Value::str(format!("?{a}")),
                    },
                );
                Port { node, attr: None }
            }
            Scalar::Const(v) => {
                let node = self
                    .hg
                    .add_node(region, NodeKind::Const { value: v.clone() });
                Port { node, attr: None }
            }
            Scalar::Agg(_) | Scalar::Arith { .. } => {
                // Composite operand: rendered as an expression label node
                // (arithmetic can alternatively be reified into external
                // relations, §2.13.1, which yields pure attribute edges).
                let node = self.hg.add_node(
                    region,
                    NodeKind::Const {
                        value: arc_core::value::Value::str(s.to_string()),
                    },
                );
                Port { node, attr: None }
            }
        }
    }

    fn predicate(&mut self, p: &Predicate, region: NodeId) {
        match p {
            Predicate::Cmp { left, op, right } => {
                // Assignment? (bare head ref on one side)
                let head_of = |s: &Scalar, b: &Builder| -> Option<Port> {
                    if let Scalar::Attr(a) = s {
                        if b.lookup_var(&a.var).is_none() {
                            if let Some(h) = b.lookup_head(&a.var) {
                                return Some(Port {
                                    node: h,
                                    attr: Some(a.attr.clone()),
                                });
                            }
                        }
                    }
                    None
                };
                let (target, value) = match (head_of(left, self), head_of(right, self)) {
                    (Some(t), None) if *op == CmpOp::Eq => (Some(t), right),
                    (None, Some(t)) if *op == CmpOp::Eq => (Some(t), left),
                    _ => (None, left),
                };
                if let Some(target) = target {
                    // Assignment edge; aggregates get their function label.
                    match value {
                        Scalar::Agg(call) => {
                            let from = match &call.arg {
                                AggArg::Expr(e) => self.port(e, region),
                                AggArg::Star => self
                                    .port(&Scalar::Const(arc_core::value::Value::str("*")), region),
                            };
                            self.hg.add_edge(
                                from,
                                target,
                                EdgeKind::Aggregation {
                                    func: call.func.name().to_string(),
                                    assignment: true,
                                },
                            );
                        }
                        other => {
                            let from = self.port(other, region);
                            self.hg.add_edge(from, target, EdgeKind::Assignment);
                        }
                    }
                    return;
                }
                // Comparison; aggregation comparisons keep the function.
                match (left, right) {
                    (Scalar::Agg(call), other) | (other, Scalar::Agg(call)) => {
                        let from = match &call.arg {
                            AggArg::Expr(e) => self.port(e, region),
                            AggArg::Star => {
                                self.port(&Scalar::Const(arc_core::value::Value::str("*")), region)
                            }
                        };
                        let to = self.port(other, region);
                        self.hg.add_edge(
                            from,
                            to,
                            EdgeKind::Aggregation {
                                func: call.func.name().to_string(),
                                assignment: false,
                            },
                        );
                    }
                    _ => {
                        let from = self.port(left, region);
                        let to = self.port(right, region);
                        self.hg.add_edge(from, to, EdgeKind::Comparison(*op));
                    }
                }
            }
            Predicate::IsNull { expr, negated } => {
                let from = self.port(expr, region);
                let to = self.port(&Scalar::Const(arc_core::value::Value::Null), region);
                let op = if *negated { CmpOp::Ne } else { CmpOp::Eq };
                self.hg.add_edge(from, to, EdgeKind::Comparison(op));
            }
        }
    }
}
