//! # arc-higraph — the diagrammatic modality of ARC
//!
//! The paper's third modality (§2.2): the linked ALT rendered as a
//! **higraph** — nested regions for scopes, cross edges for predicates —
//! in the style of Relational Diagrams (Figs 2b, 4b, 5c, 9, 12, 20, 21d–f).
//!
//! Three renderers share one [`model::Higraph`]:
//! * [`render::render_outline`] — a textual scope outline + edge list;
//! * [`render::render_dot`] — Graphviz with scopes as clusters;
//! * [`render::render_svg`] — a self-contained SVG with the paper's visual
//!   vocabulary (double-lined grouping scopes, gray grouping keys, dashed
//!   negation scopes, decorated assignment edges, labelled aggregation
//!   edges, outer-join optionality markers).
//!
//! ```
//! use arc_core::dsl::*;
//! use arc_higraph::{build_collection, render_outline, render_svg};
//!
//! // Paper Eq (3) / Fig 4b.
//! let q = collection(
//!     "Q",
//!     &["A", "sm"],
//!     quant(
//!         &[bind("r", "R")],
//!         group(&[("r", "A")]),
//!         None,
//!         and([
//!             assign("Q", "A", col("r", "A")),
//!             assign_agg("Q", "sm", sum(col("r", "B"))),
//!         ]),
//!     ),
//! );
//! let hg = build_collection(&q);
//! let outline = render_outline(&hg);
//! assert!(outline.contains("scope ∃ (grouping)"));
//! assert!(outline.contains("A▒")); // shaded grouping key
//! assert!(render_svg(&hg).starts_with("<svg"));
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod model;
pub mod render;

pub use build::{build_collection, build_sentence};
pub use model::{AttrCell, Edge, EdgeKind, Higraph, Node, NodeId, NodeKind, Port};
pub use render::{render_dot, render_outline, render_svg};

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::dsl::*;
    use arc_parser::parse_collection;

    /// Eq (1) / Fig 2b.
    fn eq1() -> arc_core::Collection {
        parse_collection("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}").unwrap()
    }

    #[test]
    fn fig2b_structure() {
        let hg = build_collection(&eq1());
        // Head table + two bound tables.
        assert_eq!(hg.count_nodes(|k| matches!(k, NodeKind::Table { .. })), 3);
        // One assignment, one join comparison, one constant selection.
        assert_eq!(hg.count_edges(|k| matches!(k, EdgeKind::Assignment)), 1);
        assert_eq!(hg.count_edges(|k| matches!(k, EdgeKind::Comparison(_))), 2);
        // One existential scope region.
        assert_eq!(hg.count_nodes(|k| matches!(k, NodeKind::Scope { .. })), 1);
    }

    #[test]
    fn fig4b_grouping_scope_and_shaded_key() {
        let q =
            parse_collection("{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}").unwrap();
        let hg = build_collection(&q);
        assert_eq!(
            hg.count_nodes(|k| matches!(k, NodeKind::Scope { grouping: true })),
            1
        );
        let shaded = hg.count_nodes(
            |k| matches!(k, NodeKind::Table { attrs, .. } if attrs.iter().any(|c| c.grouped)),
        );
        assert_eq!(shaded, 1);
        assert_eq!(
            hg.count_edges(
                |k| matches!(k, EdgeKind::Aggregation { func, assignment: true } if func == "sum")
            ),
            1
        );
    }

    #[test]
    fn fig5c_nested_collection_region() {
        let q = parse_collection(
            "{Q(A,sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} \
             [Q.A = r.A ∧ Q.sm = x.sm]}",
        )
        .unwrap();
        let hg = build_collection(&q);
        // Outer collection + nested collection regions.
        assert_eq!(
            hg.count_nodes(|k| matches!(k, NodeKind::Collection { .. })),
            2
        );
        // The FOI correlation edge r2.A = r.A crosses regions.
        assert!(hg.count_edges(|k| matches!(k, EdgeKind::Comparison(_))) >= 1);
    }

    #[test]
    fn unique_set_has_four_negation_scopes() {
        // Eq (22)'s pattern: ¬(… ¬(… ¬(…)) ∧ ¬(… ¬(…))) — 5 negations.
        let q = parse_collection(
            "{Q(d) | ∃l1 ∈ L [Q.d = l1.d ∧ ¬(∃l2 ∈ L [l2.d <> l1.d ∧ \
             ¬(∃l3 ∈ L [l3.d = l2.d ∧ ¬(∃l4 ∈ L [l4.b = l3.b ∧ l4.d = l1.d])]) ∧ \
             ¬(∃l5 ∈ L [l5.d = l1.d ∧ ¬(∃l6 ∈ L [l6.d = l2.d ∧ l6.b = l5.b])])])]}",
        )
        .unwrap();
        let hg = build_collection(&q);
        assert_eq!(hg.count_nodes(|k| matches!(k, NodeKind::Negation)), 5);
        // Negation scopes nest: maximum depth reflects the containment.
        let max_depth = hg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Negation))
            .map(|n| hg.depth(n.id))
            .max()
            .unwrap();
        assert!(max_depth >= 5, "nested negation depth {max_depth}");
    }

    #[test]
    fn fig10b_recursion_renders_one_region_per_disjunct() {
        let q = parse_collection(
            "{A(s,t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ \
             ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}",
        )
        .unwrap();
        let hg = build_collection(&q);
        assert_eq!(
            hg.count_nodes(|k| matches!(k, NodeKind::Collection { .. })),
            2,
            "two side-by-side diagrams like Fig 10b"
        );
    }

    #[test]
    fn fig12_outer_join_marker() {
        let q = parse_collection(
            "{Q(m,n) | ∃r ∈ R, s ∈ S, left(r, inner(11, s)) \
             [Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}",
        )
        .unwrap();
        let hg = build_collection(&q);
        assert_eq!(hg.count_edges(|k| matches!(k, EdgeKind::OuterOptional)), 1);
    }

    #[test]
    fn sentence_higraph_builds() {
        let s = exists(
            &[bind("r", "R")],
            and([quant(
                &[bind("s", "S")],
                group_all(),
                None,
                and([
                    eq(col("r", "id"), col("s", "id")),
                    le(col("r", "q"), count(col("s", "d"))),
                ]),
            )]),
        );
        let hg = build_sentence(&s);
        assert_eq!(
            hg.count_nodes(|k| matches!(k, NodeKind::Scope { grouping: true })),
            1
        );
        assert_eq!(
            hg.count_edges(|k| matches!(
                k,
                EdgeKind::Aggregation {
                    assignment: false,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn renderers_produce_wellformed_output() {
        let hg = build_collection(&eq1());
        let dot = render_dot(&hg);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("subgraph cluster_"));
        assert!(dot.trim_end().ends_with('}'));

        let svg = render_svg(&hg);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.matches("<rect").count() >= 3);

        let outline = render_outline(&hg);
        assert!(outline.contains("[canvas]"));
        assert!(outline.contains("head table Q"));
        assert!(outline.contains("edges:"));
    }

    #[test]
    fn edges_match_predicate_count() {
        // Losslessness proxy: every predicate of the body produces exactly
        // one edge (assignments, comparisons, aggregations).
        let q = eq1();
        let hg = build_collection(&q);
        assert_eq!(hg.edges.len(), 3);
    }

    #[test]
    fn table_cells_cover_referenced_attrs() {
        let hg = build_collection(&eq1());
        let r_table = hg
            .nodes
            .iter()
            .find_map(|n| match &n.kind {
                NodeKind::Table {
                    relation,
                    attrs,
                    is_head: false,
                    ..
                } if relation == "R" => Some(attrs.clone()),
                _ => None,
            })
            .unwrap();
        let names: Vec<&str> = r_table.iter().map(|c| c.attr.as_str()).collect();
        assert!(names.contains(&"A"));
        assert!(names.contains(&"B"));
    }
}
