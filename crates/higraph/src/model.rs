//! The higraph data model (paper §2.2, Harel's higraphs [36]):
//! **nesting** captures containment (scopes as regions) and **edges**
//! capture references (predicates between attribute cells).
//!
//! The model mirrors the paper's Relational Diagram conventions:
//!
//! * quantifier scopes are regions; *grouping* scopes get a double-lined
//!   boundary and their grouping-key attributes a gray shade (Fig 4b);
//! * negation scopes are dashed regions (read outside-in, Fig 9);
//! * assignment predicates are visually decorated (directed) edges —
//!   "crucial for nested comprehensions" (§2.2);
//! * aggregation edges carry the function name (Fig 4b's `sum` arrow);
//! * the optional side of an outer join carries a circle marker (Fig 12);
//! * nested collections are sub-regions that can be collapsed/expanded
//!   (abstract relations, §2.13.2).

use arc_core::ast::CmpOp;
use arc_core::value::Value;

/// Node index into [`Higraph::nodes`].
pub type NodeId = usize;

/// A higraph over one query.
#[derive(Debug, Clone, Default)]
pub struct Higraph {
    /// Node arena; index 0 is the canvas.
    pub nodes: Vec<Node>,
    /// Cross-reference edges.
    pub edges: Vec<Edge>,
}

/// A node (region or table or constant).
#[derive(Debug, Clone)]
pub struct Node {
    /// Self index.
    pub id: NodeId,
    /// Parent region (None for the canvas).
    pub parent: Option<NodeId>,
    /// Children in insertion order.
    pub children: Vec<NodeId>,
    /// Payload.
    pub kind: NodeKind,
}

/// Node payloads.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// The drawing canvas.
    Canvas,
    /// A collection region (the output table plus its body scopes).
    Collection {
        /// Head relation name ("" for anonymous nested collections).
        name: String,
    },
    /// An existential scope region.
    Scope {
        /// Grouping scope (double-lined boundary)?
        grouping: bool,
    },
    /// A negation scope region (dashed boundary).
    Negation,
    /// A table: the head table (`is_head`) or a bound relation occurrence.
    Table {
        /// Relation name.
        relation: String,
        /// Range variable ("" for head tables).
        var: String,
        /// Attribute cells.
        attrs: Vec<AttrCell>,
        /// Is this the output (head) table?
        is_head: bool,
    },
    /// A constant operand (selection constants appear as labels).
    Const {
        /// The value.
        value: Value,
    },
}

/// One attribute cell of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrCell {
    /// Attribute name.
    pub attr: String,
    /// Grouping key (gray shade in the diagram)?
    pub grouped: bool,
}

/// An edge endpoint: a node, optionally anchored at an attribute cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Target node.
    pub node: NodeId,
    /// Attribute anchor (None = whole node, e.g. constants).
    pub attr: Option<String>,
}

/// Edge kinds, following the paper's visual vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// A comparison predicate (label = operator unless `=`).
    Comparison(CmpOp),
    /// An assignment predicate — decorated/directed (§2.2 difference (ii)).
    Assignment,
    /// An aggregation input: `to` receives `func(from)` (Fig 4b).
    Aggregation {
        /// Aggregate function name.
        func: String,
        /// Part of an assignment (vs. comparison) predicate.
        assignment: bool,
    },
    /// Optionality marker of an outer join: the `to` side is optional
    /// (empty circle in Fig 12).
    OuterOptional,
}

/// A cross-reference edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Source port.
    pub from: Port,
    /// Target port.
    pub to: Port,
    /// Kind.
    pub kind: EdgeKind,
}

impl Higraph {
    /// Create a higraph containing only the canvas.
    pub fn new() -> Self {
        Higraph {
            nodes: vec![Node {
                id: 0,
                parent: None,
                children: Vec::new(),
                kind: NodeKind::Canvas,
            }],
            edges: Vec::new(),
        }
    }

    /// The canvas node id.
    pub fn canvas(&self) -> NodeId {
        0
    }

    /// Add a node under `parent`; returns its id.
    pub fn add_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            parent: Some(parent),
            children: Vec::new(),
            kind,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Add an edge.
    pub fn add_edge(&mut self, from: Port, to: Port, kind: EdgeKind) {
        self.edges.push(Edge { from, to, kind });
    }

    /// Depth of a node (canvas = 0).
    pub fn depth(&self, mut id: NodeId) -> usize {
        let mut d = 0;
        while let Some(p) = self.nodes[id].parent {
            d += 1;
            id = p;
        }
        d
    }

    /// Count nodes of a given predicate.
    pub fn count_nodes(&self, pred: impl Fn(&NodeKind) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.kind)).count()
    }

    /// Count edges of a given predicate.
    pub fn count_edges(&self, pred: impl Fn(&EdgeKind) -> bool) -> usize {
        self.edges.iter().filter(|e| pred(&e.kind)).count()
    }
}
