//! Higraph renderers: a textual **outline** (scopes as indentation, edges
//! as a cross-reference list), **Graphviz DOT** (scopes as clusters), and a
//! self-contained **SVG** (nested boxes, the closest to the paper's
//! figures).

use crate::model::*;
use std::collections::HashMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Outline
// ---------------------------------------------------------------------------

/// Render a textual outline: regions as indentation, then the edge list.
pub fn render_outline(hg: &Higraph) -> String {
    let mut out = String::new();
    outline_node(hg, hg.canvas(), 0, &mut out);
    if !hg.edges.is_empty() {
        out.push_str("edges:\n");
        for e in &hg.edges {
            let from = port_label(hg, &e.from);
            let to = port_label(hg, &e.to);
            let desc = match &e.kind {
                EdgeKind::Comparison(op) => format!("{from} {} {to}", op.symbol()),
                EdgeKind::Assignment => format!("{to} ⟵ {from}"),
                EdgeKind::Aggregation { func, assignment } => {
                    if *assignment {
                        format!("{to} ⟵ {func}({from})")
                    } else {
                        format!("{func}({from}) tested against {to}")
                    }
                }
                EdgeKind::OuterOptional => format!("{to} optional to {from}"),
            };
            let _ = writeln!(out, "  {desc}");
        }
    }
    out
}

fn outline_node(hg: &Higraph, id: NodeId, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match &hg.nodes[id].kind {
        NodeKind::Canvas => {
            let _ = writeln!(out, "{pad}[canvas]");
        }
        NodeKind::Collection { name } => {
            let shown = if name.is_empty() { "(anonymous)" } else { name };
            let _ = writeln!(out, "{pad}collection {shown}");
        }
        NodeKind::Scope { grouping } => {
            let marker = if *grouping {
                "scope ∃ (grouping)"
            } else {
                "scope ∃"
            };
            let _ = writeln!(out, "{pad}{marker}");
        }
        NodeKind::Negation => {
            let _ = writeln!(out, "{pad}¬ scope");
        }
        NodeKind::Table {
            relation,
            var,
            attrs,
            is_head,
        } => {
            let cells: Vec<String> = attrs
                .iter()
                .map(|c| {
                    if c.grouped {
                        format!("{}▒", c.attr)
                    } else {
                        c.attr.clone()
                    }
                })
                .collect();
            let role = if *is_head { "head " } else { "" };
            let alias = if var.is_empty() || var == relation {
                String::new()
            } else {
                format!(" as {var}")
            };
            let _ = writeln!(
                out,
                "{pad}{role}table {relation}{alias} [{}]",
                cells.join(", ")
            );
        }
        NodeKind::Const { value } => {
            let _ = writeln!(out, "{pad}const {value}");
        }
    }
    for child in &hg.nodes[id].children {
        outline_node(hg, *child, depth + 1, out);
    }
}

fn port_label(hg: &Higraph, p: &Port) -> String {
    match &hg.nodes[p.node].kind {
        NodeKind::Table { relation, var, .. } => {
            let base = if var.is_empty() { relation } else { var };
            match &p.attr {
                Some(a) => format!("{base}.{a}"),
                None => base.clone(),
            }
        }
        NodeKind::Const { value } => value.to_string(),
        _ => format!("#{}", p.node),
    }
}

// ---------------------------------------------------------------------------
// Graphviz DOT
// ---------------------------------------------------------------------------

/// Render Graphviz DOT with scopes as clusters; grouping scopes have bold
/// borders, negation scopes dashed borders, grouped cells gray fill.
pub fn render_dot(hg: &Higraph) -> String {
    let mut out =
        String::from("digraph arc {\n  compound=true;\n  rankdir=LR;\n  node [shape=plaintext];\n");
    for child in &hg.nodes[hg.canvas()].children {
        dot_node(hg, *child, &mut out, 1);
    }
    for (i, e) in hg.edges.iter().enumerate() {
        let from = dot_port(hg, &e.from);
        let to = dot_port(hg, &e.to);
        let (label, style) = match &e.kind {
            EdgeKind::Comparison(op) => (op.symbol().to_string(), "solid"),
            EdgeKind::Assignment => ("=".to_string(), "bold"),
            EdgeKind::Aggregation { func, .. } => (func.clone(), "bold"),
            EdgeKind::OuterOptional => ("○".to_string(), "dotted"),
        };
        let _ = writeln!(
            out,
            "  {from} -> {to} [label=\"{label}\", style={style}, id=\"e{i}\"];"
        );
    }
    out.push_str("}\n");
    out
}

fn dot_node(hg: &Higraph, id: NodeId, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    match &hg.nodes[id].kind {
        NodeKind::Canvas => {}
        NodeKind::Collection { name } => {
            let _ = writeln!(out, "{pad}subgraph cluster_{id} {{");
            let _ = writeln!(out, "{pad}  label=\"{name}\"; style=rounded;");
            for c in &hg.nodes[id].children {
                dot_node(hg, *c, out, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        NodeKind::Scope { grouping } => {
            let _ = writeln!(out, "{pad}subgraph cluster_{id} {{");
            let style = if *grouping {
                "penwidth=2; peripheries=2;"
            } else {
                "penwidth=1;"
            };
            let _ = writeln!(out, "{pad}  label=\"\"; {style}");
            for c in &hg.nodes[id].children {
                dot_node(hg, *c, out, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        NodeKind::Negation => {
            let _ = writeln!(out, "{pad}subgraph cluster_{id} {{");
            let _ = writeln!(out, "{pad}  label=\"¬\"; style=dashed;");
            for c in &hg.nodes[id].children {
                dot_node(hg, *c, out, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        NodeKind::Table {
            relation,
            var,
            attrs,
            is_head,
        } => {
            let title = if var.is_empty() || var == relation {
                relation.clone()
            } else {
                format!("{relation} {var}")
            };
            let mut rows = format!(
                "<tr><td bgcolor=\"{}\"><b>{}</b></td></tr>",
                if *is_head { "#d0e0ff" } else { "#eeeeee" },
                title
            );
            for cell in attrs {
                let bg = if cell.grouped {
                    " bgcolor=\"#cccccc\""
                } else {
                    ""
                };
                let _ = write!(rows, "<tr><td port=\"{0}\"{bg}>{0}</td></tr>", cell.attr);
            }
            let _ = writeln!(
                out,
                "{pad}n{id} [label=<<table border=\"1\" cellborder=\"1\" cellspacing=\"0\">{rows}</table>>];"
            );
        }
        NodeKind::Const { value } => {
            let text = value.to_string().replace('"', "\\\"");
            let _ = writeln!(out, "{pad}n{id} [shape=none, label=\"{text}\"];");
        }
    }
}

fn dot_port(hg: &Higraph, p: &Port) -> String {
    match (&hg.nodes[p.node].kind, &p.attr) {
        (NodeKind::Table { .. }, Some(a)) => format!("n{}:{}", p.node, a),
        _ => format!("n{}", p.node),
    }
}

// ---------------------------------------------------------------------------
// SVG
// ---------------------------------------------------------------------------

const CELL_H: f64 = 22.0;
const CELL_W: f64 = 92.0;
const PAD: f64 = 14.0;

struct Layout {
    /// Node → (x, y, w, h).
    boxes: HashMap<NodeId, (f64, f64, f64, f64)>,
    /// (node, attr) → cell anchor point.
    anchors: HashMap<(NodeId, String), (f64, f64)>,
}

/// Render a self-contained SVG: regions as nested rectangles (double
/// strokes for grouping scopes, dashed for negation), tables as cell
/// stacks with gray grouped cells, predicate edges as labelled lines.
pub fn render_svg(hg: &Higraph) -> String {
    let mut layout = Layout {
        boxes: HashMap::new(),
        anchors: HashMap::new(),
    };
    let (w, h) = measure(hg, hg.canvas(), &mut layout);
    place(hg, hg.canvas(), PAD, PAD, &mut layout);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" font-family=\"sans-serif\" font-size=\"12\">",
        w + 2.0 * PAD,
        h + 2.0 * PAD
    );
    draw(hg, hg.canvas(), &layout, &mut out);
    for e in &hg.edges {
        let from = anchor_of(&layout, &e.from);
        let to = anchor_of(&layout, &e.to);
        if let (Some((x1, y1)), Some((x2, y2))) = (from, to) {
            let (style, label) = match &e.kind {
                EdgeKind::Comparison(op) => ("stroke=\"#333\"", op.symbol().to_string()),
                EdgeKind::Assignment => ("stroke=\"#0044cc\" stroke-width=\"1.6\"", "=".into()),
                EdgeKind::Aggregation { func, .. } => {
                    ("stroke=\"#aa2200\" stroke-width=\"1.6\"", func.clone())
                }
                EdgeKind::OuterOptional => ("stroke=\"#888\" stroke-dasharray=\"3,3\"", "○".into()),
            };
            let _ = writeln!(
                out,
                "  <line x1=\"{x1:.0}\" y1=\"{y1:.0}\" x2=\"{x2:.0}\" y2=\"{y2:.0}\" {style}/>"
            );
            let (mx, my) = ((x1 + x2) / 2.0, (y1 + y2) / 2.0 - 3.0);
            let label = xml_escape(&label);
            let _ = writeln!(
                out,
                "  <text x=\"{mx:.0}\" y=\"{my:.0}\" text-anchor=\"middle\" fill=\"#555\">{label}</text>"
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

fn measure(hg: &Higraph, id: NodeId, layout: &mut Layout) -> (f64, f64) {
    let node = &hg.nodes[id];
    let (w, h) = match &node.kind {
        NodeKind::Table { attrs, .. } => (CELL_W, CELL_H * (attrs.len() as f64 + 1.0)),
        NodeKind::Const { .. } => (CELL_W * 0.6, CELL_H),
        _ => {
            // Region: children laid out left-to-right.
            let mut w = 0.0f64;
            let mut h = 0.0f64;
            for c in &node.children {
                let (cw, ch) = measure(hg, *c, layout);
                w += cw + PAD;
                h = h.max(ch);
            }
            (w.max(CELL_W) + PAD, h + 2.0 * PAD + CELL_H * 0.6)
        }
    };
    layout.boxes.insert(id, (0.0, 0.0, w, h));
    (w, h)
}

fn place(hg: &Higraph, id: NodeId, x: f64, y: f64, layout: &mut Layout) {
    let (_, _, w, h) = layout.boxes[&id];
    layout.boxes.insert(id, (x, y, w, h));
    let node = &hg.nodes[id];
    match &node.kind {
        NodeKind::Table { attrs, .. } => {
            for (i, cell) in attrs.iter().enumerate() {
                layout.anchors.insert(
                    (id, cell.attr.clone()),
                    (x + CELL_W / 2.0, y + CELL_H * (i as f64 + 1.5)),
                );
            }
        }
        NodeKind::Const { .. } => {
            layout
                .anchors
                .insert((id, String::new()), (x + CELL_W * 0.3, y + CELL_H / 2.0));
        }
        _ => {
            let mut cx = x + PAD;
            for c in &node.children.clone() {
                let (_, _, cw, _) = layout.boxes[c];
                place(hg, *c, cx, y + PAD + CELL_H * 0.5, layout);
                cx += cw + PAD;
            }
        }
    }
}

fn draw(hg: &Higraph, id: NodeId, layout: &Layout, out: &mut String) {
    let (x, y, w, h) = layout.boxes[&id];
    let node = &hg.nodes[id];
    match &node.kind {
        NodeKind::Canvas => {}
        NodeKind::Collection { name } => {
            let _ = writeln!(
                out,
                "  <rect x=\"{x:.0}\" y=\"{y:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" fill=\"none\" stroke=\"#99a\" rx=\"8\"/>"
            );
            let label = xml_escape(name);
            let _ = writeln!(
                out,
                "  <text x=\"{:.0}\" y=\"{:.0}\" fill=\"#99a\">{label}</text>",
                x + 4.0,
                y + 12.0
            );
        }
        NodeKind::Scope { grouping } => {
            let _ = writeln!(
                out,
                "  <rect x=\"{x:.0}\" y=\"{y:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" fill=\"none\" stroke=\"#333\"/>"
            );
            if *grouping {
                // Double-lined boundary (Fig 4b).
                let _ = writeln!(
                    out,
                    "  <rect x=\"{:.0}\" y=\"{:.0}\" width=\"{:.0}\" height=\"{:.0}\" fill=\"none\" stroke=\"#333\"/>",
                    x + 3.0,
                    y + 3.0,
                    w - 6.0,
                    h - 6.0
                );
            }
        }
        NodeKind::Negation => {
            let _ = writeln!(
                out,
                "  <rect x=\"{x:.0}\" y=\"{y:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" fill=\"none\" stroke=\"#a00\" stroke-dasharray=\"6,3\"/>"
            );
            let _ = writeln!(
                out,
                "  <text x=\"{:.0}\" y=\"{:.0}\" fill=\"#a00\">¬</text>",
                x + 4.0,
                y + 14.0
            );
        }
        NodeKind::Table {
            relation,
            var,
            attrs,
            is_head,
        } => {
            let title_bg = if *is_head { "#d0e0ff" } else { "#eeeeee" };
            let _ = writeln!(
                out,
                "  <rect x=\"{x:.0}\" y=\"{y:.0}\" width=\"{CELL_W:.0}\" height=\"{CELL_H:.0}\" fill=\"{title_bg}\" stroke=\"#333\"/>"
            );
            let title = if var.is_empty() || var == relation {
                relation.clone()
            } else {
                format!("{relation} {var}")
            };
            let title = xml_escape(&title);
            let _ = writeln!(
                out,
                "  <text x=\"{:.0}\" y=\"{:.0}\">{title}</text>",
                x + 4.0,
                y + CELL_H - 7.0
            );
            for (i, cell) in attrs.iter().enumerate() {
                let cy = y + CELL_H * (i as f64 + 1.0);
                let fill = if cell.grouped { "#cccccc" } else { "#ffffff" };
                let _ = writeln!(
                    out,
                    "  <rect x=\"{x:.0}\" y=\"{cy:.0}\" width=\"{CELL_W:.0}\" height=\"{CELL_H:.0}\" fill=\"{fill}\" stroke=\"#333\"/>"
                );
                let label = xml_escape(&cell.attr);
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.0}\" y=\"{:.0}\">{label}</text>",
                    x + 4.0,
                    cy + CELL_H - 7.0
                );
            }
        }
        NodeKind::Const { value } => {
            let label = xml_escape(&value.to_string());
            let _ = writeln!(
                out,
                "  <text x=\"{x:.0}\" y=\"{:.0}\" fill=\"#333\">{label}</text>",
                y + CELL_H - 7.0
            );
        }
    }
    for c in &node.children {
        draw(hg, *c, layout, out);
    }
}

fn anchor_of(layout: &Layout, p: &Port) -> Option<(f64, f64)> {
    match &p.attr {
        Some(a) => layout.anchors.get(&(p.node, a.clone())).copied(),
        None => layout
            .anchors
            .get(&(p.node, String::new()))
            .copied()
            .or_else(|| {
                layout
                    .boxes
                    .get(&p.node)
                    .map(|(x, y, w, h)| (x + w / 2.0, y + h / 2.0))
            }),
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}
