//! Tokenizer for the comprehension-syntax modality.
//!
//! Both the paper's Unicode notation (`∃`, `∈`, `∧`, `∨`, `¬`, `γ`, `∅`)
//! and ASCII equivalents (`exists`, `in`, `and`, `or`, `not`, `group`,
//! `()`) are accepted, so queries can be written in either style.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `|`
    Bar,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `∈` or keyword `in`
    In,
    /// `∃` or keyword `exists`
    Exists,
    /// `¬` or keyword `not`
    Not,
    /// `∧` or keyword `and`
    And,
    /// `∨` or keyword `or`
    Or,
    /// `γ` or keyword `group`
    Gamma,
    /// `∅`
    Empty,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=` or `≤`
    Le,
    /// `>`
    Gt,
    /// `>=` or `≥`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// An identifier (relation, variable, or attribute name). Identifiers
    /// may be quoted with double quotes to include symbols (`"-"`, `"*"`,
    /// `"$1"` — paper Fig 15).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal.
    Str(String),
    /// Keyword `is` (for `is null` / `is not null`).
    Is,
    /// Keyword `null`.
    Null,
    /// Keyword `distinct`.
    Distinct,
    /// Keyword `true`.
    True,
    /// Keyword `false`.
    False,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            other => {
                let s = match other {
                    Token::LBrace => "{",
                    Token::RBrace => "}",
                    Token::LParen => "(",
                    Token::RParen => ")",
                    Token::LBracket => "[",
                    Token::RBracket => "]",
                    Token::Bar => "|",
                    Token::Comma => ",",
                    Token::Dot => ".",
                    Token::Semicolon => ";",
                    Token::In => "∈",
                    Token::Exists => "∃",
                    Token::Not => "¬",
                    Token::And => "∧",
                    Token::Or => "∨",
                    Token::Gamma => "γ",
                    Token::Empty => "∅",
                    Token::Eq => "=",
                    Token::Ne => "<>",
                    Token::Lt => "<",
                    Token::Le => "<=",
                    Token::Gt => ">",
                    Token::Ge => ">=",
                    Token::Plus => "+",
                    Token::Minus => "-",
                    Token::Star => "*",
                    Token::Slash => "/",
                    Token::Is => "is",
                    Token::Null => "null",
                    Token::Distinct => "distinct",
                    Token::True => "true",
                    Token::False => "false",
                    _ => unreachable!(),
                };
                write!(f, "{s}")
            }
        }
    }
}

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Lexing error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (offset, c) = chars[i];
        let mut push = |t: Token| out.push(Spanned { token: t, offset });
        match c {
            c if c.is_whitespace() => {}
            '{' => push(Token::LBrace),
            '}' => push(Token::RBrace),
            '(' => push(Token::LParen),
            ')' => push(Token::RParen),
            '[' => push(Token::LBracket),
            ']' => push(Token::RBracket),
            '|' => push(Token::Bar),
            ',' => push(Token::Comma),
            '.' => push(Token::Dot),
            ';' => push(Token::Semicolon),
            '∈' => push(Token::In),
            '∃' => push(Token::Exists),
            '¬' => push(Token::Not),
            '∧' => push(Token::And),
            '∨' => push(Token::Or),
            'γ' => push(Token::Gamma),
            '∅' => push(Token::Empty),
            '≤' => push(Token::Le),
            '≥' => push(Token::Ge),
            '≠' => push(Token::Ne),
            '+' => push(Token::Plus),
            '*' => push(Token::Star),
            '/' => push(Token::Slash),
            '=' => push(Token::Eq),
            '<' => {
                if matches!(chars.get(i + 1), Some((_, '='))) {
                    push(Token::Le);
                    i += 1;
                } else if matches!(chars.get(i + 1), Some((_, '>'))) {
                    push(Token::Ne);
                    i += 1;
                } else {
                    push(Token::Lt);
                }
            }
            '>' => {
                if matches!(chars.get(i + 1), Some((_, '='))) {
                    push(Token::Ge);
                    i += 1;
                } else {
                    push(Token::Gt);
                }
            }
            '!' => {
                if matches!(chars.get(i + 1), Some((_, '='))) {
                    push(Token::Ne);
                    i += 1;
                } else {
                    return Err(LexError {
                        message: "expected `!=`".to_string(),
                        offset,
                    });
                }
            }
            '-' => {
                // Comment `--` to end of line, else minus.
                if matches!(chars.get(i + 1), Some((_, '-'))) {
                    while i < chars.len() && chars[i].1 != '\n' {
                        i += 1;
                    }
                } else {
                    push(Token::Minus);
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    if chars[j].1 == '\'' {
                        closed = true;
                        break;
                    }
                    s.push(chars[j].1);
                    j += 1;
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated string literal".to_string(),
                        offset,
                    });
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset,
                });
                i = j;
            }
            '"' => {
                // Quoted identifier (external relation names like "-", "*").
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    if chars[j].1 == '"' {
                        closed = true;
                        break;
                    }
                    s.push(chars[j].1);
                    j += 1;
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated quoted identifier".to_string(),
                        offset,
                    });
                }
                out.push(Spanned {
                    token: Token::Ident(s),
                    offset,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut text = String::new();
                let mut is_float = false;
                while j < chars.len() {
                    let ch = chars[j].1;
                    if ch.is_ascii_digit() {
                        text.push(ch);
                        j += 1;
                    } else if ch == '.'
                        && !is_float
                        && matches!(chars.get(j + 1), Some((_, d)) if d.is_ascii_digit())
                    {
                        is_float = true;
                        text.push(ch);
                        j += 1;
                    } else {
                        break;
                    }
                }
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal `{text}`"),
                        offset,
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal `{text}`"),
                        offset,
                    })?)
                };
                out.push(Spanned { token, offset });
                i = j - 1;
            }
            c if c.is_alphabetic() || c == '_' || c == '$' || c == '#' || c == '@' => {
                let mut j = i;
                let mut text = String::new();
                while j < chars.len() {
                    let ch = chars[j].1;
                    if ch.is_alphanumeric() || ch == '_' || ch == '$' || ch == '#' || ch == '@' {
                        text.push(ch);
                        j += 1;
                    } else {
                        break;
                    }
                }
                let token = match text.to_ascii_lowercase().as_str() {
                    "in" => Token::In,
                    "exists" => Token::Exists,
                    "not" => Token::Not,
                    "and" => Token::And,
                    "or" => Token::Or,
                    "group" => Token::Gamma,
                    "is" => Token::Is,
                    "null" => Token::Null,
                    "distinct" => Token::Distinct,
                    "true" => Token::True,
                    "false" => Token::False,
                    _ => Token::Ident(text),
                };
                out.push(Spanned { token, offset });
                i = j - 1;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset,
                })
            }
        }
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn unicode_and_ascii_forms_agree() {
        let a = kinds("∃r ∈ R [¬ x ∧ y ∨ z]");
        let b = kinds("exists r in R [not x and y or z]");
        assert_eq!(a, b);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= ≤ ≥ ≠"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Le,
                Token::Ge,
                Token::Ne
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds("42 3.5 'hi'"),
            vec![Token::Int(42), Token::Float(3.5), Token::Str("hi".into())]
        );
    }

    #[test]
    fn attr_ref_lexes_as_ident_dot_ident() {
        assert_eq!(
            kinds("r.A"),
            vec![
                Token::Ident("r".into()),
                Token::Dot,
                Token::Ident("A".into())
            ]
        );
    }

    #[test]
    fn quoted_identifiers_for_externals() {
        assert_eq!(
            kinds("f ∈ \"*\""),
            vec![
                Token::Ident("f".into()),
                Token::In,
                Token::Ident("*".into())
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("a -- comment\n b"), kinds("a b"));
    }

    #[test]
    fn dollar_identifiers() {
        assert_eq!(kinds("$1"), vec![Token::Ident("$1".into())]);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = lex("a ? b").unwrap_err();
        assert_eq!(err.offset, 2);
    }
}
