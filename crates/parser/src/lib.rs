//! # arc-parser — the comprehension-syntax modality of ARC
//!
//! The textual modality of the Abstract Relational Calculus: a
//! comprehension-style notation that strictly generalizes Tuple Relational
//! Calculus (paper §2.1–§2.3). Accepts the paper's Unicode notation and an
//! ASCII-keyword equivalent, prints back the Unicode form.
//!
//! ```
//! use arc_parser::{parse_collection, print_collection};
//!
//! // Paper Eq (3) — grouped aggregate in the FIO pattern.
//! let q = parse_collection(
//!     "{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}",
//! ).unwrap();
//! assert_eq!(q.head.attrs, vec!["A", "sm"]);
//!
//! // ASCII spelling parses to the same AST.
//! let ascii = parse_collection(
//!     "{Q(A,sm) | exists r in R, group(r.A) [Q.A = r.A and Q.sm = sum(r.B)]}",
//! ).unwrap();
//! assert_eq!(q, ascii);
//!
//! // Printing is parse-stable.
//! let printed = print_collection(&q);
//! assert_eq!(parse_collection(&printed).unwrap(), q);
//! ```

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod printer;

pub use parser::{parse_collection, parse_program, parse_sentence, ParseError};
pub use printer::{print_collection, print_formula, print_program};

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::ast::*;
    use arc_core::dsl::*;

    /// Every numbered comprehension of the paper, as source text.
    fn paper_equations() -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "eq1",
                "{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}",
            ),
            (
                "eq2",
                "{Q(A,B) | ∃x ∈ X, z ∈ {Z(B) | ∃y ∈ Y [Z.B = y.A ∧ x.A < y.A]} [Q.A = x.A ∧ Q.B = z.B]}",
            ),
            (
                "eq3",
                "{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}",
            ),
            (
                "eq7",
                "{Q(A,sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} [Q.A = r.A ∧ Q.sm = x.sm]}",
            ),
            (
                "eq8",
                "{Q(dept,av) | ∃x ∈ {X(dept,av,sm) | ∃r ∈ R, s ∈ S, γ r.dept \
                 [X.dept = r.dept ∧ X.av = avg(s.sal) ∧ X.sm = sum(s.sal) ∧ r.empl = s.empl]} \
                 [Q.dept = x.dept ∧ Q.av = x.av ∧ x.sm > 100]}",
            ),
            (
                "eq16",
                "{A(s,t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ \
                 ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}",
            ),
            (
                "eq17",
                "{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ¬(∃s ∈ S [s.A = r.A ∨ s.A is null ∨ r.A is null])]}",
            ),
            (
                "eq18",
                "{Q(m,n) | ∃r ∈ R, s ∈ S, left(r, inner(11, s)) \
                 [Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}",
            ),
            (
                "eq20",
                "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus \
                 [Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out > t.B]}",
            ),
            (
                "eq26",
                "{C(row,col,val) | ∃a ∈ A, b ∈ B, f ∈ \"*\", γ a.row, b.col \
                 [C.row = a.row ∧ C.col = b.col ∧ a.col = b.row ∧ \
                  C.val = sum(f.out) ∧ f.$1 = a.val ∧ f.$2 = b.val]}",
            ),
            (
                "eq27",
                "{Q(id) | ∃r ∈ R [Q.id = r.id ∧ ∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q = count(s.d)]]}",
            ),
            (
                "eq29",
                "{Q(id) | ∃r ∈ R, x ∈ {X(id,ct) | ∃s ∈ S, r2 ∈ R, γ r2.id, left(r2, s) \
                 [X.id = r2.id ∧ X.ct = count(s.d) ∧ r2.id = s.id]} \
                 [Q.id = r.id ∧ r.id = x.id ∧ r.q = x.ct]}",
            ),
        ]
    }

    #[test]
    fn all_paper_equations_parse_and_round_trip() {
        for (name, src) in paper_equations() {
            let parsed =
                parse_collection(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            let printed = print_collection(&parsed);
            let reparsed = parse_collection(&printed)
                .unwrap_or_else(|e| panic!("{name} failed to re-parse `{printed}`: {e}"));
            assert_eq!(
                parsed.normalized(),
                reparsed.normalized(),
                "{name} round-trip mismatch"
            );
        }
    }

    #[test]
    fn eq1_parses_to_expected_ast() {
        let src = "{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}";
        let expected = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), int(0)),
                ]),
            ),
        );
        assert_eq!(parse_collection(src).unwrap(), expected);
    }

    #[test]
    fn sentences_parse() {
        // Eq (13) and (14).
        let e13 = parse_sentence("∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q <= count(s.d)]]").unwrap();
        assert!(matches!(e13, Formula::Quant(_)));
        let e14 = parse_sentence("¬∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q > count(s.d)]]").unwrap();
        assert!(matches!(e14, Formula::Not(_)));
    }

    #[test]
    fn program_with_definitions_and_query() {
        let src = "\
            {D(s) | ∃p ∈ P [D.s = p.s]};\n\
            {Q(s) | ∃d ∈ D [Q.s = d.s]}";
        let p = parse_program(src).unwrap();
        assert_eq!(p.definitions.len(), 1);
        assert_eq!(p.definitions[0].name(), "D");
        assert!(p.query.is_some());

        // Trailing semicolon: everything is a definition.
        let defs_only = parse_program("{D(s) | ∃p ∈ P [D.s = p.s]};").unwrap();
        assert_eq!(defs_only.definitions.len(), 1);
        assert!(defs_only.query.is_none());
    }

    #[test]
    fn parenthesized_formulas_and_scalars_disambiguate() {
        let f = parse_sentence("(∃r ∈ R [r.A = 1]) ∧ (1 + 2) * 3 = 9").unwrap();
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn or_and_precedence() {
        let f = parse_sentence("∃r ∈ R [r.A = 1 ∨ r.A = 2 ∧ r.B = 3]").unwrap();
        // ∧ binds tighter: Or(a, And(b, c)).
        if let Formula::Quant(q) = f {
            match q.body {
                Formula::Or(branches) => {
                    assert_eq!(branches.len(), 2);
                    assert!(matches!(branches[1], Formula::And(_)));
                }
                other => panic!("expected Or, got {other:?}"),
            }
        } else {
            panic!("expected quantifier");
        }
    }

    #[test]
    fn distinct_aggregates_parse() {
        let q = parse_collection("{Q(c) | ∃r ∈ R, γ ∅ [Q.c = count(distinct r.B)]}").unwrap();
        let printed = print_collection(&q);
        assert!(printed.contains("count(distinct r.B)"));
        assert_eq!(parse_collection(&printed).unwrap(), q);
    }

    #[test]
    fn count_star_parses() {
        let q = parse_collection("{Q(c) | ∃r ∈ R, γ ∅ [Q.c = count(*)]}").unwrap();
        let printed = print_collection(&q);
        assert!(printed.contains("count(*)"));
        assert_eq!(parse_collection(&printed).unwrap(), q);
    }

    #[test]
    fn full_join_and_literals_round_trip() {
        let src = "{Q(a,b) | ∃r ∈ R, s ∈ S, full(r, s) [Q.a = r.A ∧ Q.b = s.B ∧ r.A = s.B]}";
        let q = parse_collection(src).unwrap();
        assert!(matches!(
            q.body,
            Formula::Quant(ref qq) if matches!(qq.join, Some(JoinTree::Full(_, _)))
        ));
        let printed = print_collection(&q);
        assert_eq!(parse_collection(&printed).unwrap(), q);
    }

    #[test]
    fn error_messages_have_positions() {
        let err = parse_collection("{Q(A) | ∃r ∈ R [Q.A = ]}").unwrap_err();
        assert!(err.message.contains("expected scalar"));
        assert!(err.offset > 0);

        let err2 = parse_collection("{Q(A)").unwrap_err();
        assert!(err2.message.contains("expected"));
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse_collection("{Q(A) | ∃r ∈ R [Q.A = r.A ∧ r.B = -5]}").unwrap();
        let printed = print_collection(&q);
        assert!(printed.contains("-5"));
        assert_eq!(parse_collection(&printed).unwrap(), q);
    }

    #[test]
    fn true_false_literals() {
        let f = parse_sentence("true").unwrap();
        assert_eq!(f, Formula::And(Vec::new()));
        let f = parse_sentence("false").unwrap();
        assert_eq!(f, Formula::Or(Vec::new()));
    }

    #[test]
    fn dsl_built_queries_print_and_reparse() {
        // Eq (8) built with the DSL, printed, reparsed.
        let x = collection(
            "X",
            &["dept", "av", "sm"],
            quant(
                &[bind("r", "R"), bind("s", "S")],
                group(&[("r", "dept")]),
                None,
                and([
                    eq(col("r", "empl"), col("s", "empl")),
                    assign("X", "dept", col("r", "dept")),
                    assign_agg("X", "av", avg(col("s", "sal"))),
                    assign_agg("X", "sm", sum(col("s", "sal"))),
                ]),
            ),
        );
        let q = collection(
            "Q",
            &["dept", "av"],
            exists(
                &[bind_coll("x", x)],
                and([
                    assign("Q", "dept", col("x", "dept")),
                    assign("Q", "av", col("x", "av")),
                    gt(col("x", "sm"), int(100)),
                ]),
            ),
        );
        let printed = print_collection(&q);
        let reparsed = parse_collection(&printed).unwrap();
        assert_eq!(q.normalized(), reparsed.normalized());
    }
}
