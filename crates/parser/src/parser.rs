//! Recursive-descent parser for the comprehension-syntax modality.
//!
//! Grammar (Unicode forms shown; ASCII keywords equally accepted):
//!
//! ```text
//! program    := collection (';' collection)* ';'?
//! collection := '{' head '|' formula '}'
//! head       := IDENT '(' IDENT (',' IDENT)* ')'
//! formula    := and_f ('∨' and_f)*
//! and_f      := unary ('∧' unary)*
//! unary      := '¬' unary | quant | '(' formula ')' | 'true' | 'false'
//!             | predicate
//! quant      := '∃' item (',' item)* '[' formula ']'
//! item       := IDENT '∈' (IDENT | collection)          -- binding
//!             | 'γ' ('∅' | '(' keys? ')' | keys)        -- grouping
//!             | ('left'|'full'|'inner') '(' jtree… ')'  -- join annotation
//! keys       := attrref (',' attrref)*
//! jtree      := IDENT | literal | ('left'|'full'|'inner') '(' jtree… ')'
//! predicate  := scalar (CMP scalar | 'is' ['not'] 'null')
//! scalar     := term (('+'|'-') term)*
//! term       := atom (('*'|'/') atom)*
//! atom       := literal | AGG '(' ['distinct'] (scalar | '*') ')'
//!             | attrref | '(' scalar ')' | '-' atom
//! attrref    := IDENT '.' IDENT
//! ```
//!
//! A trailing `;` makes every statement a definition (`query = None`);
//! otherwise the final collection is the program's query.

use crate::lexer::{lex, LexError, Spanned, Token};
use arc_core::ast::*;
use arc_core::value::Value;
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source (end of input when the source ran out).
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse a single collection comprehension.
pub fn parse_collection(src: &str) -> Result<Collection, ParseError> {
    let mut p = Parser::new(src)?;
    let c = p.collection()?;
    p.expect_eof()?;
    Ok(c)
}

/// Parse a boolean sentence (a headless formula, paper Fig 9).
pub fn parse_sentence(src: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::new(src)?;
    let f = p.formula()?;
    p.expect_eof()?;
    Ok(f)
}

/// Parse a program: `;`-separated collections. A trailing `;` marks all
/// statements as definitions; otherwise the last one is the query.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser::new(src)?;
    let mut collections = Vec::new();
    let mut trailing_semi = false;
    loop {
        collections.push(p.collection()?);
        if p.eat(&Token::Semicolon) {
            trailing_semi = true;
            if p.at_eof() {
                break;
            }
            trailing_semi = false;
            continue;
        }
        break;
    }
    p.expect_eof()?;
    let mut program = Program::default();
    if trailing_semi {
        for c in collections {
            program.definitions.push(Definition { collection: c });
        }
    } else {
        let query = collections.pop();
        for c in collections {
            program.definitions.push(Definition { collection: c });
        }
        program.query = query;
    }
    Ok(program)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
            src_len: src.len(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{t}`, found {}",
                self.peek()
                    .map(|x| format!("`{x}`"))
                    .unwrap_or_else(|| "end of input".to_string())
            )))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.offset(),
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing input starting with `{}`",
                self.peek().expect("not eof")
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected {what}, found {}",
                other
                    .map(|x| format!("`{x}`"))
                    .unwrap_or_else(|| "end of input".to_string())
            ))),
        }
    }

    // -- Collections ---------------------------------------------------------

    fn collection(&mut self) -> Result<Collection, ParseError> {
        self.expect(&Token::LBrace)?;
        let relation = self.ident("head relation name")?;
        self.expect(&Token::LParen)?;
        let mut attrs = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                attrs.push(self.ident("head attribute")?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Bar)?;
        let body = self.formula()?;
        self.expect(&Token::RBrace)?;
        Ok(Collection {
            head: Head { relation, attrs },
            body,
        })
    }

    // -- Formulas -------------------------------------------------------------

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let first = self.and_formula()?;
        if self.peek() != Some(&Token::Or) {
            return Ok(first);
        }
        let mut branches = vec![first];
        while self.eat(&Token::Or) {
            branches.push(self.and_formula()?);
        }
        Ok(Formula::Or(branches))
    }

    fn and_formula(&mut self) -> Result<Formula, ParseError> {
        let first = self.unary()?;
        if self.peek() != Some(&Token::And) {
            return Ok(first);
        }
        let mut conjuncts = vec![first];
        while self.eat(&Token::And) {
            conjuncts.push(self.unary()?);
        }
        Ok(Formula::And(conjuncts))
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.bump();
                Ok(Formula::Not(Box::new(self.unary()?)))
            }
            Some(Token::Exists) => self.quant(),
            Some(tok @ (Token::True | Token::False)) => {
                // `true`/`false` standing alone are formula literals, but a
                // following operator means they start a boolean *scalar*
                // (e.g. `true <> r.flag`).
                let scalar_follows = matches!(
                    self.peek_at(1),
                    Some(
                        Token::Eq
                            | Token::Ne
                            | Token::Lt
                            | Token::Le
                            | Token::Gt
                            | Token::Ge
                            | Token::Is
                            | Token::Plus
                            | Token::Minus
                            | Token::Star
                            | Token::Slash
                    )
                );
                if scalar_follows {
                    Ok(Formula::Pred(self.predicate()?))
                } else {
                    let empty_and = *tok == Token::True;
                    self.bump();
                    Ok(if empty_and {
                        Formula::And(Vec::new())
                    } else {
                        Formula::Or(Vec::new())
                    })
                }
            }
            Some(Token::LParen) => {
                // Ambiguous: parenthesized formula or parenthesized scalar
                // starting a predicate. Try predicate first (it consumes
                // scalar parens), backtrack to formula group.
                let saved = self.pos;
                match self.predicate() {
                    Ok(p) => Ok(Formula::Pred(p)),
                    Err(_) => {
                        self.pos = saved;
                        self.expect(&Token::LParen)?;
                        let f = self.formula()?;
                        self.expect(&Token::RParen)?;
                        Ok(f)
                    }
                }
            }
            _ => Ok(Formula::Pred(self.predicate()?)),
        }
    }

    fn quant(&mut self) -> Result<Formula, ParseError> {
        self.expect(&Token::Exists)?;
        let mut bindings = Vec::new();
        let mut grouping: Option<Grouping> = None;
        let mut join: Option<JoinTree> = None;
        loop {
            match self.peek() {
                Some(Token::Gamma) => {
                    self.bump();
                    grouping = Some(self.grouping_keys()?);
                }
                Some(Token::Ident(name))
                    if is_join_kw(name) && self.peek_at(1) == Some(&Token::LParen) =>
                {
                    join = Some(self.join_tree()?);
                }
                Some(Token::Ident(_)) if self.peek_at(1) == Some(&Token::In) => {
                    let var = self.ident("binding variable")?;
                    self.expect(&Token::In)?;
                    let source = match self.peek() {
                        Some(Token::LBrace) => {
                            BindingSource::Collection(Box::new(self.collection()?))
                        }
                        _ => BindingSource::Named(self.ident("relation name")?),
                    };
                    bindings.push(Binding { var, source });
                }
                _ => {
                    return Err(self.err(
                        "expected a binding (`var ∈ source`), grouping (`γ …`), or join annotation"
                            .to_string(),
                    ))
                }
            }
            if self.peek() == Some(&Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Token::LBracket)?;
        let body = self.formula()?;
        self.expect(&Token::RBracket)?;
        Ok(Formula::Quant(Box::new(Quant {
            bindings,
            grouping,
            join,
            body,
        })))
    }

    fn grouping_keys(&mut self) -> Result<Grouping, ParseError> {
        // `γ ∅`, `γ()`, `γ(k, …)` or `γ k, …` (keys extend while the next
        // comma is followed by `ident.ident`).
        if self.eat(&Token::Empty) {
            return Ok(Grouping::empty());
        }
        if self.eat(&Token::LParen) {
            let mut keys = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    keys.push(self.attr_ref()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Grouping::by(keys));
        }
        let mut keys = vec![self.attr_ref()?];
        while self.peek() == Some(&Token::Comma)
            && matches!(self.peek_at(1), Some(Token::Ident(_)))
            && self.peek_at(2) == Some(&Token::Dot)
        {
            self.bump(); // comma
            keys.push(self.attr_ref()?);
        }
        Ok(Grouping::by(keys))
    }

    fn join_tree(&mut self) -> Result<JoinTree, ParseError> {
        let kw = self.ident("join keyword")?;
        self.expect(&Token::LParen)?;
        let mut children = Vec::new();
        loop {
            children.push(self.join_leaf()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        match kw.as_str() {
            "inner" => Ok(JoinTree::Inner(children)),
            "left" | "full" => {
                if children.len() != 2 {
                    return Err(self.err(format!("`{kw}` join takes exactly two operands")));
                }
                let r = children.pop().expect("len 2");
                let l = children.pop().expect("len 2");
                if kw == "left" {
                    Ok(JoinTree::Left(Box::new(l), Box::new(r)))
                } else {
                    Ok(JoinTree::Full(Box::new(l), Box::new(r)))
                }
            }
            other => Err(self.err(format!("unknown join keyword `{other}`"))),
        }
    }

    fn join_leaf(&mut self) -> Result<JoinTree, ParseError> {
        match self.peek() {
            Some(Token::Ident(name))
                if is_join_kw(name) && self.peek_at(1) == Some(&Token::LParen) =>
            {
                self.join_tree()
            }
            Some(Token::Ident(_)) => Ok(JoinTree::Var(self.ident("join variable")?)),
            Some(
                Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::Null
                | Token::True
                | Token::False,
            ) => {
                let v = self.literal()?;
                Ok(JoinTree::Lit(v))
            }
            _ => Err(self.err("expected join-tree leaf".to_string())),
        }
    }

    // -- Predicates and scalars ------------------------------------------------

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let left = self.scalar()?;
        match self.peek() {
            Some(Token::Is) => {
                self.bump();
                let negated = self.eat(&Token::Not);
                self.expect(&Token::Null)?;
                Ok(Predicate::IsNull {
                    expr: left,
                    negated,
                })
            }
            Some(op_tok) => {
                let op = match op_tok {
                    Token::Eq => CmpOp::Eq,
                    Token::Ne => CmpOp::Ne,
                    Token::Lt => CmpOp::Lt,
                    Token::Le => CmpOp::Le,
                    Token::Gt => CmpOp::Gt,
                    Token::Ge => CmpOp::Ge,
                    other => {
                        return Err(
                            self.err(format!("expected comparison operator, found `{other}`"))
                        )
                    }
                };
                self.bump();
                let right = self.scalar()?;
                Ok(Predicate::Cmp { left, op, right })
            }
            None => Err(self.err("expected comparison operator".to_string())),
        }
    }

    fn scalar(&mut self) -> Result<Scalar, ParseError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = Scalar::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Scalar, ParseError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.atom()?;
            left = Scalar::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Scalar, ParseError> {
        match self.peek().cloned() {
            Some(Token::Minus) => {
                self.bump();
                match self.atom()? {
                    Scalar::Const(Value::Int(v)) => Ok(Scalar::Const(Value::Int(-v))),
                    Scalar::Const(Value::Float(v)) => Ok(Scalar::Const(Value::Float(-v))),
                    other => Ok(Scalar::Arith {
                        op: ArithOp::Sub,
                        left: Box::new(Scalar::Const(Value::Int(0))),
                        right: Box::new(other),
                    }),
                }
            }
            Some(
                Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::Null
                | Token::True
                | Token::False,
            ) => Ok(Scalar::Const(self.literal()?)),
            Some(Token::LParen) => {
                self.bump();
                let s = self.scalar()?;
                self.expect(&Token::RParen)?;
                Ok(s)
            }
            Some(Token::Ident(name)) => {
                if let Some(func) = agg_func(&name) {
                    if self.peek_at(1) == Some(&Token::LParen) {
                        self.bump(); // name
                        self.bump(); // (
                        let distinct = self.eat(&Token::Distinct);
                        let arg = if self.eat(&Token::Star) {
                            AggArg::Star
                        } else {
                            AggArg::Expr(self.scalar()?)
                        };
                        self.expect(&Token::RParen)?;
                        return Ok(Scalar::Agg(Box::new(AggCall {
                            func,
                            arg,
                            distinct,
                        })));
                    }
                }
                let attr = self.attr_ref()?;
                Ok(Scalar::Attr(attr))
            }
            other => Err(self.err(format!(
                "expected scalar expression, found {}",
                other
                    .map(|x| format!("`{x}`"))
                    .unwrap_or_else(|| "end of input".to_string())
            ))),
        }
    }

    fn attr_ref(&mut self) -> Result<AttrRef, ParseError> {
        let var = self.ident("range variable")?;
        self.expect(&Token::Dot)?;
        let attr = self.ident("attribute name")?;
        Ok(AttrRef { var, attr })
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Float(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Null) => Ok(Value::Null),
            Some(Token::True) => Ok(Value::Bool(true)),
            Some(Token::False) => Ok(Value::Bool(false)),
            other => Err(self.err(format!(
                "expected literal, found {}",
                other
                    .map(|x| format!("`{x}`"))
                    .unwrap_or_else(|| "end of input".to_string())
            ))),
        }
    }
}

fn is_join_kw(name: &str) -> bool {
    matches!(name, "left" | "full" | "inner")
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name {
        "sum" => Some(AggFunc::Sum),
        "count" => Some(AggFunc::Count),
        "avg" => Some(AggFunc::Avg),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        _ => None,
    }
}
