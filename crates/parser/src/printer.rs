//! Pretty-printer for the comprehension-syntax modality (the inverse of
//! [`crate::parser`]): renders ARC in the paper's Unicode notation.
//!
//! Round-trip guarantee: `parse(print(c))` equals `c.normalized()` — the
//! connective tree is flattened (a presentational, not relational,
//! property; see [`Formula::normalized`]).

use arc_core::ast::*;

/// Render a collection, e.g.
/// `{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}`.
pub fn print_collection(c: &Collection) -> String {
    format!(
        "{{{}({}) | {}}}",
        quote_ident(&c.head.relation),
        c.head.attrs.join(","),
        print_formula(&c.body)
    )
}

/// Render a sentence (headless formula).
pub fn print_formula(f: &Formula) -> String {
    print_f(f, Prec::Or)
}

/// Render a program: definitions then query, `;`-separated. A program
/// without a query gets a trailing `;` (the parser's definition marker).
pub fn print_program(p: &Program) -> String {
    let mut parts: Vec<String> = p
        .definitions
        .iter()
        .map(|d| print_collection(&d.collection))
        .collect();
    if let Some(q) = &p.query {
        parts.push(print_collection(q));
        parts.join(";\n")
    } else {
        let mut s = parts.join(";\n");
        if !s.is_empty() {
            s.push(';');
        }
        s
    }
}

/// Precedence context for parenthesization.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Or,
    And,
}

fn print_f(f: &Formula, ctx: Prec) -> String {
    match f {
        Formula::Or(fs) => {
            if fs.is_empty() {
                return "false".to_string();
            }
            if fs.len() == 1 {
                return print_f(&fs[0], ctx);
            }
            let body = fs
                .iter()
                .map(|s| print_f(s, Prec::Or))
                .collect::<Vec<_>>()
                .join(" ∨ ");
            if ctx > Prec::Or && fs.len() > 1 {
                format!("({body})")
            } else {
                body
            }
        }
        Formula::And(fs) => {
            if fs.is_empty() {
                return "true".to_string();
            }
            if fs.len() == 1 {
                return print_f(&fs[0], ctx);
            }
            let body = fs
                .iter()
                .map(|s| print_f(s, Prec::And))
                .collect::<Vec<_>>()
                .join(" ∧ ");
            if ctx > Prec::And && fs.len() > 1 {
                format!("({body})")
            } else {
                body
            }
        }
        Formula::Not(inner) => format!("¬({})", print_f(inner, Prec::Or)),
        Formula::Quant(q) => print_quant(q),
        Formula::Pred(p) => p.to_string(),
    }
}

fn print_quant(q: &Quant) -> String {
    let mut items: Vec<String> = q
        .bindings
        .iter()
        .map(|b| match &b.source {
            BindingSource::Named(rel) => format!("{} ∈ {}", b.var, quote_ident(rel)),
            BindingSource::Collection(c) => format!("{} ∈ {}", b.var, print_collection(c)),
        })
        .collect();
    if let Some(g) = &q.grouping {
        if g.keys.is_empty() {
            items.push("γ ∅".to_string());
        } else {
            let keys: Vec<String> = g.keys.iter().map(|k| k.to_string()).collect();
            items.push(format!("γ {}", keys.join(", ")));
        }
    }
    if let Some(j) = &q.join {
        items.push(j.to_string());
    }
    format!("∃{} [{}]", items.join(", "), print_f(&q.body, Prec::Or))
}

/// Quote an identifier when it is not a plain name (external relations are
/// called `"-"`, `"*"`, `">"` in the paper's Fig 15/20).
fn quote_ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_alphabetic() || c == '_')
            .unwrap_or(false)
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '$')
        && !matches!(
            name.to_ascii_lowercase().as_str(),
            "in" | "exists"
                | "not"
                | "and"
                | "or"
                | "group"
                | "is"
                | "null"
                | "distinct"
                | "true"
                | "false"
        );
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}
