//! Property test: `parse(print(c))` equals `c.normalized()` for randomly
//! generated well-formed collections (workspace invariant #1).

use arc_core::ast::*;
use arc_core::value::Value;
use arc_parser::{parse_collection, print_collection};
use proptest::prelude::*;

/// Plain identifiers that survive quoting/keyword rules.
fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["r", "s", "t", "u", "v1", "v2", "w_x"]).prop_map(|s| s.to_string())
}

fn rel_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["R", "S", "T", "Emp", "Dept", "*", "-", "Likes"])
        .prop_map(|s| s.to_string())
}

fn attr_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["A", "B", "C", "id", "val", "$1"]).prop_map(|s| s.to_string())
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|v| Value::Int(v as i64)),
        (-1000i32..1000).prop_map(|v| Value::Float(v as f64 / 8.0)),
        "[a-z]{0,6}".prop_map(Value::Str),
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn attr_ref() -> impl Strategy<Value = AttrRef> {
    (ident(), attr_name()).prop_map(|(var, attr)| AttrRef { var, attr })
}

fn scalar(depth: u32) -> BoxedStrategy<Scalar> {
    let leaf = prop_oneof![
        attr_ref().prop_map(Scalar::Attr),
        value().prop_map(Scalar::Const),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = scalar(depth - 1);
    let arith = (
        prop::sample::select(vec![ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div]),
        sub.clone(),
        sub.clone(),
    )
        .prop_map(|(op, l, r)| Scalar::Arith {
            op,
            left: Box::new(l),
            right: Box::new(r),
        });
    let agg = (
        prop::sample::select(vec![
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]),
        sub,
        any::<bool>(),
    )
        .prop_map(|(func, arg, distinct)| {
            Scalar::Agg(Box::new(AggCall {
                func,
                arg: AggArg::Expr(arg),
                distinct,
            }))
        });
    prop_oneof![4 => leaf, 2 => arith, 1 => agg].boxed()
}

fn predicate(depth: u32) -> BoxedStrategy<Predicate> {
    let cmp = (
        scalar(depth),
        prop::sample::select(vec![
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]),
        scalar(depth),
    )
        .prop_map(|(left, op, right)| Predicate::Cmp { left, op, right });
    let is_null = (scalar(depth), any::<bool>())
        .prop_map(|(expr, negated)| Predicate::IsNull { expr, negated });
    prop_oneof![4 => cmp, 1 => is_null].boxed()
}

fn formula(depth: u32) -> BoxedStrategy<Formula> {
    let leaf = predicate(1).prop_map(Formula::Pred);
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = formula(depth - 1);
    let quant = (
        prop::collection::vec((ident(), rel_name()), 1..3),
        prop::option::of(prop::collection::vec(attr_ref(), 0..2)),
        sub.clone(),
    )
        .prop_map(|(binds, grouping, body)| {
            Formula::Quant(Box::new(Quant {
                bindings: binds
                    .into_iter()
                    .map(|(var, rel)| Binding::named(var, rel))
                    .collect(),
                grouping: grouping.map(|keys| Grouping { keys }),
                join: None,
                body,
            }))
        });
    prop_oneof![
        3 => leaf,
        2 => quant,
        2 => prop::collection::vec(sub.clone(), 1..3).prop_map(Formula::And),
        1 => prop::collection::vec(sub.clone(), 1..3).prop_map(Formula::Or),
        1 => sub.prop_map(|f| Formula::Not(Box::new(f))),
    ]
    .boxed()
}

fn collection() -> impl Strategy<Value = Collection> {
    (
        prop::sample::select(vec!["Q", "Out", "X"]),
        prop::collection::vec(attr_name(), 1..3),
        formula(3),
    )
        .prop_map(|(name, attrs, body)| Collection {
            head: Head {
                relation: name.to_string(),
                attrs,
            },
            body,
        })
}

/// Strings that the single-quote literal syntax cannot represent.
fn has_unprintable_string(c: &Collection) -> bool {
    let printed = print_collection(c);
    printed.contains('\'') && !printed.matches('\'').count().is_multiple_of(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(c in collection()) {
        prop_assume!(!has_unprintable_string(&c));
        let printed = print_collection(&c);
        let reparsed = parse_collection(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(reparsed.normalized(), c.normalized());
    }

    #[test]
    fn printing_is_stable(c in collection()) {
        prop_assume!(!has_unprintable_string(&c));
        let once = print_collection(&c);
        let twice = print_collection(&parse_collection(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
