//! Scope-body analysis: predicate-role partitioning and free-variable
//! computation.
//!
//! This is the shared front half of both the evaluator and the planner
//! (it lived inside `arc-engine` before the plan layer existed): a scope
//! body is a conjunction whose members play distinct *roles* — filters,
//! head assignments, aggregation predicates, boolean subformulas — and
//! both lowering and execution need the same partition.

use arc_core::ast::*;

/// The body of a quantifier scope, partitioned by predicate role.
pub struct Parts<'f> {
    /// Plain predicates: filters (no aggregate, not a head assignment).
    pub filters: Vec<&'f Predicate>,
    /// Non-aggregating head assignments `(attr, expr)`.
    pub assigns: Vec<(&'f str, &'f Scalar)>,
    /// Aggregating head assignments (need a grouping scope).
    pub agg_assigns: Vec<(&'f str, &'f Scalar)>,
    /// Aggregating non-assignment predicates (per-group tests).
    pub agg_tests: Vec<&'f Predicate>,
    /// Boolean subformulas without scope-level aggregates (pre-group).
    pub pre_bool: Vec<&'f Formula>,
    /// Boolean subformulas containing scope-level aggregates (per-group).
    pub post_bool: Vec<&'f Formula>,
    /// Subformulas carrying positive head assignments (the emission spine).
    pub spines: Vec<&'f Formula>,
}

/// Partition a scope body's conjuncts by role, relative to head relation
/// `head` (pass a name that cannot occur — e.g. `"\u{0}"` — to classify a
/// boolean scope, where nothing is an assignment).
pub fn partition<'f>(body: &'f Formula, head: &str) -> Parts<'f> {
    let mut parts = Parts {
        filters: Vec::new(),
        assigns: Vec::new(),
        agg_assigns: Vec::new(),
        agg_tests: Vec::new(),
        pre_bool: Vec::new(),
        post_bool: Vec::new(),
        spines: Vec::new(),
    };
    for conjunct in body.conjuncts() {
        match conjunct {
            Formula::Pred(p) => {
                if let Some((attr, expr)) = head_assignment(p, head) {
                    if expr.has_aggregate() {
                        parts.agg_assigns.push((attr, expr));
                    } else {
                        parts.assigns.push((attr, expr));
                    }
                } else if p.has_aggregate() {
                    parts.agg_tests.push(p);
                } else {
                    parts.filters.push(p);
                }
            }
            sub => {
                if has_head_assignment(sub, head) {
                    parts.spines.push(sub);
                } else if has_direct_aggregate(sub) {
                    parts.post_bool.push(sub);
                } else {
                    parts.pre_bool.push(sub);
                }
            }
        }
    }
    parts
}

/// `Head.attr = expr` (either orientation) with a bare head side.
pub fn head_assignment<'f>(p: &'f Predicate, head: &str) -> Option<(&'f str, &'f Scalar)> {
    if let Predicate::Cmp {
        left,
        op: CmpOp::Eq,
        right,
    } = p
    {
        fn is_head<'s>(s: &'s Scalar, head: &str) -> Option<&'s str> {
            match s {
                Scalar::Attr(a) if a.var == head => Some(a.attr.as_str()),
                _ => None,
            }
        }
        match (is_head(left, head), is_head(right, head)) {
            (Some(attr), None) => return Some((attr, right)),
            (None, Some(attr)) => return Some((attr, left)),
            _ => {}
        }
    }
    None
}

/// Does `f` contain a *positive* head assignment for `head` (not under
/// negation, not inside a nested collection)?
pub fn has_head_assignment(f: &Formula, head: &str) -> bool {
    match f {
        Formula::Pred(p) => head_assignment(p, head).is_some(),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|s| has_head_assignment(s, head)),
        Formula::Not(_) => false,
        Formula::Quant(q) => has_head_assignment(&q.body, head),
    }
}

/// Does `f` contain an aggregate belonging to the *current* scope (i.e. in
/// a predicate not nested under another quantifier)?
pub fn has_direct_aggregate(f: &Formula) -> bool {
    match f {
        Formula::Pred(p) => p.has_aggregate(),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_direct_aggregate),
        Formula::Not(inner) => has_direct_aggregate(inner),
        Formula::Quant(_) => false,
    }
}

/// Extract `(attr-ref, other-side)` pairs from an equality predicate, in
/// both orientations.
pub fn equality_pair(p: &Predicate) -> Vec<(&AttrRef, &Scalar)> {
    let mut out = Vec::new();
    if let Predicate::Cmp {
        left,
        op: CmpOp::Eq,
        right,
    } = p
    {
        if let Scalar::Attr(a) = left {
            out.push((a, right));
        }
        if let Scalar::Attr(a) = right {
            out.push((a, left));
        }
    }
    out
}

/// Variables referenced by a predicate.
pub fn pred_vars(p: &Predicate) -> Vec<String> {
    let mut out = Vec::new();
    let mut push_scalar = |s: &Scalar| {
        for r in s.attr_refs() {
            out.push(r.var.clone());
        }
    };
    match p {
        Predicate::Cmp { left, right, .. } => {
            push_scalar(left);
            push_scalar(right);
        }
        Predicate::IsNull { expr, .. } => push_scalar(expr),
    }
    out
}

/// Constants appearing in a predicate (for literal-leaf ON association in
/// outer-join annotation trees).
pub fn pred_consts(p: &Predicate) -> Vec<arc_core::value::Value> {
    fn walk(s: &Scalar, out: &mut Vec<arc_core::value::Value>) {
        match s {
            Scalar::Const(v) => out.push(v.clone()),
            Scalar::Attr(_) => {}
            Scalar::Agg(call) => {
                if let AggArg::Expr(e) = &call.arg {
                    walk(e, out);
                }
            }
            Scalar::Arith { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    match p {
        Predicate::Cmp { left, right, .. } => {
            walk(left, &mut out);
            walk(right, &mut out);
        }
        Predicate::IsNull { expr, .. } => walk(expr, &mut out),
    }
    out
}

/// Free variables of a collection: referenced variables that no internal
/// binding (or the collection's own head) declares.
pub fn free_vars(c: &Collection) -> Vec<String> {
    let mut bound: Vec<String> = vec![c.head.relation.clone()];
    let mut free = Vec::new();
    collect_free(&c.body, &mut bound, &mut free);
    free
}

/// Free variables of a bare formula: referenced variables that no
/// quantifier inside the formula binds. Used by the decorrelation pass to
/// detect non-equi-join correlation hiding in a scope's boolean
/// subformulas (a nested quantifier referencing an outer variable).
pub fn formula_free_vars(f: &Formula) -> Vec<String> {
    let mut bound = Vec::new();
    let mut free = Vec::new();
    collect_free(f, &mut bound, &mut free);
    free
}

fn collect_free(f: &Formula, bound: &mut Vec<String>, free: &mut Vec<String>) {
    match f {
        Formula::Quant(q) => {
            let base = bound.len();
            for b in &q.bindings {
                if let BindingSource::Collection(c) = &b.source {
                    // The nested collection sees current bound vars.
                    let mut inner_bound = bound.clone();
                    inner_bound.push(c.head.relation.clone());
                    collect_free(&c.body, &mut inner_bound, free);
                }
                bound.push(b.var.clone());
            }
            collect_free(&q.body, bound, free);
            bound.truncate(base);
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                collect_free(sub, bound, free);
            }
        }
        Formula::Not(inner) => collect_free(inner, bound, free),
        Formula::Pred(p) => {
            let mut push_scalar = |s: &Scalar| {
                for r in s.attr_refs() {
                    if !bound.iter().any(|b| b == &r.var) && !free.contains(&r.var) {
                        free.push(r.var.clone());
                    }
                }
            };
            match p {
                Predicate::Cmp { left, right, .. } => {
                    push_scalar(left);
                    push_scalar(right);
                }
                Predicate::IsNull { expr, .. } => push_scalar(expr),
            }
        }
    }
}
