//! Plan caching: hashable scope/program keys and the global plan cache.
//!
//! Planning a scope is pure — the [`ScopePlan`] depends only on the scope
//! *structure* (bindings, source shapes, filters), the statistics visible
//! at plan time (row counts, distinct estimates), the outer-variable
//! availability, and the [`PlanMode`]. That makes plans cacheable at two
//! levels:
//!
//! * **per evaluation context** — a correlated scope re-enters the
//!   planner once per outer row with identical inputs; the engine caches
//!   by `(scope identity, outer-availability signature, planning role)`
//!   so the search runs once, not once per row (the engine's cache lives
//!   on its `Ctx`; this module supplies the signature hashing). Boolean
//!   scopes planned for set-level decorrelation cache under the same
//!   scheme with the `decor` role bit set — and the engine keys its
//!   build-once semi-join key sets off the cached plan, so *execution*
//!   of a decorrelated scope amortizes across outer rows too, not just
//!   planning;
//! * **globally, keyed by program hash** — repeated queries (same text,
//!   re-parsed) hash to the same [`PlanKey`] and skip planning entirely.
//!
//! ## What the keys contain — and what staleness means
//!
//! A [`PlanKey`] covers the program hash, the scope's structural
//! fingerprint **including row counts**, the outer signature, the
//! catalog's **statistics epoch**, and the plan mode. Sketch *contents*
//! are deliberately excluded — hashing them would cost more than planning
//! — but every `ANALYZE` bumps the epoch from a process-wide counter, so
//! statistics changes invalidate exactly the plans they could have
//! shaped. Consequently a cached plan can be stale in exactly one way —
//! un-analyzed data changed under an unchanged cardinality profile, so
//! the greedy order or probe choice is no longer the one a fresh plan
//! would pick. That is a *performance* wobble, never a correctness one:
//! every plan of a scope is bag-equivalent by construction (ordering
//! changes enumeration order only; probing only skips rows a filter would
//! reject), which is the same guarantee workspace invariant 8 pins down.
//!
//! The hashes are 128-bit (two independent FNV-1a streams), so accidental
//! collisions are out of the picture for any realistic cache population.

use crate::physical::{PlanMode, ScopePlan};
use crate::scope::{OuterScope, ScopeSpec, SourceSpec};
use arc_core::ast::{AggArg, BindingSource, Collection, Formula, JoinTree, Predicate, Scalar};
use arc_core::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Bound on global cache entries; on overflow the cache is cleared
/// wholesale (plans are cheap to recompute — eviction bookkeeping would
/// cost more than the occasional refill).
const GLOBAL_CAP: usize = 4096;

// ---------------------------------------------------------------------------
// Structural hashing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second stream's offset basis (any constant ≠ the FNV basis works; this
/// is the basis xored with a fixed pattern so the streams decorrelate).
const FNV_OFFSET_B: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// Two independent FNV-1a streams fed with the same structure walk.
pub struct StructHasher {
    a: u64,
    b: u64,
}

impl StructHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        StructHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    /// Feed raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME.rotate_left(1) | 1);
        }
    }

    /// Feed a structure tag (disambiguates enum variants / list kinds).
    pub fn tag(&mut self, tag: u8) {
        self.bytes(&[0xfe, tag]);
    }

    /// Feed a length or index.
    pub fn num(&mut self, n: usize) {
        self.bytes(&(n as u64).to_le_bytes());
    }

    /// Feed a string with a terminator (so `("ab","c")` ≠ `("a","bc")`).
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0xff]);
    }

    /// Feed a predicate structurally (no `fmt` machinery — this runs on
    /// the per-evaluation fast path).
    pub fn predicate(&mut self, p: &Predicate) {
        match p {
            Predicate::Cmp { left, op, right } => {
                self.tag(0x20);
                self.scalar(left);
                self.tag(*op as u8);
                self.scalar(right);
            }
            Predicate::IsNull { expr, negated } => {
                self.tag(0x21);
                self.scalar(expr);
                self.tag(u8::from(*negated));
            }
        }
    }

    /// Feed a scalar expression structurally.
    pub fn scalar(&mut self, s: &Scalar) {
        match s {
            Scalar::Attr(a) => {
                self.tag(0x30);
                self.str(&a.var);
                self.str(&a.attr);
            }
            Scalar::Const(v) => {
                self.tag(0x31);
                self.value(v);
            }
            Scalar::Agg(call) => {
                self.tag(0x32);
                self.tag(call.func as u8);
                self.tag(u8::from(call.distinct));
                match &call.arg {
                    AggArg::Star => self.tag(0x33),
                    AggArg::Expr(e) => {
                        self.tag(0x34);
                        self.scalar(e);
                    }
                }
            }
            Scalar::Arith { op, left, right } => {
                self.tag(0x35);
                self.tag(*op as u8);
                self.scalar(left);
                self.scalar(right);
            }
        }
    }

    /// Feed a constant value.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.tag(0x40),
            Value::Bool(b) => {
                self.tag(0x41);
                self.tag(u8::from(*b));
            }
            Value::Int(i) => {
                self.tag(0x42);
                self.bytes(&i.to_le_bytes());
            }
            Value::Float(f) => {
                self.tag(0x43);
                self.bytes(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                self.tag(0x44);
                self.str(s);
            }
        }
    }

    /// The 128-bit digest.
    pub fn finish(self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// The first stream only (for single-`u64` signatures).
    pub fn finish64(self) -> u64 {
        self.a
    }
}

impl Default for StructHasher {
    fn default() -> Self {
        StructHasher::new()
    }
}

// ---------------------------------------------------------------------------
// Program / scope keys
// ---------------------------------------------------------------------------

/// Structural hash of a whole collection (head + body). Two parses of the
/// same query text produce equal hashes; this is the "program hash" the
/// global plan cache is keyed under.
pub fn program_hash(c: &Collection) -> u64 {
    let mut h = StructHasher::new();
    hash_collection(&mut h, c);
    h.finish64()
}

/// Structural hash of a bare formula (boolean sentences).
pub fn formula_hash(f: &Formula) -> u64 {
    let mut h = StructHasher::new();
    hash_formula(&mut h, f);
    h.finish64()
}

fn hash_collection(h: &mut StructHasher, c: &Collection) {
    h.tag(1);
    h.str(&c.head.relation);
    h.num(c.head.attrs.len());
    for a in &c.head.attrs {
        h.str(a);
    }
    hash_formula(h, &c.body);
}

fn hash_formula(h: &mut StructHasher, f: &Formula) {
    match f {
        Formula::Pred(p) => {
            h.tag(2);
            h.predicate(p);
        }
        Formula::And(fs) => {
            h.tag(3);
            h.num(fs.len());
            fs.iter().for_each(|s| hash_formula(h, s));
        }
        Formula::Or(fs) => {
            h.tag(4);
            h.num(fs.len());
            fs.iter().for_each(|s| hash_formula(h, s));
        }
        Formula::Not(inner) => {
            h.tag(5);
            hash_formula(h, inner);
        }
        Formula::Quant(q) => {
            h.tag(6);
            h.num(q.bindings.len());
            for b in &q.bindings {
                h.str(&b.var);
                match &b.source {
                    BindingSource::Named(n) => {
                        h.tag(7);
                        h.str(n);
                    }
                    BindingSource::Collection(c) => {
                        h.tag(8);
                        hash_collection(h, c);
                    }
                }
            }
            match &q.grouping {
                None => h.tag(9),
                Some(g) => {
                    h.tag(10);
                    h.num(g.keys.len());
                    for k in &g.keys {
                        h.str(&k.var);
                        h.str(&k.attr);
                    }
                }
            }
            match &q.join {
                None => h.tag(11),
                Some(t) => {
                    h.tag(12);
                    hash_join_tree(h, t);
                }
            }
            hash_formula(h, &q.body);
        }
    }
}

fn hash_join_tree(h: &mut StructHasher, t: &JoinTree) {
    match t {
        JoinTree::Var(v) => {
            h.tag(0x50);
            h.str(v);
        }
        JoinTree::Lit(v) => {
            h.tag(0x51);
            h.value(v);
        }
        JoinTree::Inner(children) => {
            h.tag(0x52);
            h.num(children.len());
            children.iter().for_each(|c| hash_join_tree(h, c));
        }
        JoinTree::Left(l, r) => {
            h.tag(0x53);
            hash_join_tree(h, l);
            hash_join_tree(h, r);
        }
        JoinTree::Full(l, r) => {
            h.tag(0x54);
            hash_join_tree(h, l);
            hash_join_tree(h, r);
        }
    }
}

/// Structural fingerprint of one scope spec: bindings (variables, source
/// shapes, **row counts**), and filters. Combined with the outer
/// signature and mode into a [`PlanKey`].
pub fn scope_fingerprint(spec: &ScopeSpec<'_>) -> (u64, u64) {
    let mut h = StructHasher::new();
    h.num(spec.bindings.len());
    for b in &spec.bindings {
        h.str(b.var);
        match &b.source {
            SourceSpec::Relation { schema, rows } => {
                h.tag(1);
                h.num(schema.len());
                schema.iter().for_each(|a| h.str(a));
                match rows {
                    None => h.tag(2),
                    Some(n) => {
                        h.tag(3);
                        h.num(*n);
                    }
                }
            }
            SourceSpec::External { schema, patterns } => {
                h.tag(4);
                h.num(schema.len());
                schema.iter().for_each(|a| h.str(a));
                h.num(patterns.len());
                for p in patterns {
                    h.num(p.len());
                    p.iter().for_each(|&pos| h.num(pos));
                }
            }
            SourceSpec::Abstract { attrs } => {
                h.tag(5);
                h.num(attrs.len());
                attrs.iter().for_each(|a| h.str(a));
            }
            SourceSpec::Nested { attrs, free } => {
                h.tag(6);
                h.num(attrs.len());
                attrs.iter().for_each(|a| h.str(a));
                h.num(free.len());
                free.iter().for_each(|v| h.str(v));
            }
        }
    }
    h.num(spec.filters.len());
    for p in spec.filters {
        h.predicate(p);
    }
    h.finish()
}

/// Hash of which referenced outer variables are visible to a scope and
/// with what attribute schemas — the "outer-availability signature".
///
/// Two enumerations of the same scope under environments with equal
/// signatures plan identically: the planner observes the outer
/// environment *only* through `attrs(var)` lookups on the variables the
/// scope references (filter attribute references plus nested collections'
/// free variables), shadowed by scope locals.
pub fn outer_signature<'x>(
    locals: &[&str],
    filters: &[&'x Predicate],
    nested_free: impl Iterator<Item = &'x str>,
    outer: &dyn OuterScope,
) -> u64 {
    let mut referenced: Vec<&str> = filters
        .iter()
        .flat_map(|p| crate::logical::pred_attr_refs(p))
        .map(|r| r.var.as_str())
        .chain(nested_free)
        .filter(|v| !locals.contains(v))
        .collect();
    referenced.sort_unstable();
    referenced.dedup();
    let mut h = StructHasher::new();
    h.num(referenced.len());
    for var in referenced {
        h.str(var);
        match outer.attrs(var) {
            None => h.tag(1),
            Some(attrs) => {
                h.tag(2);
                h.num(attrs.len());
                attrs.iter().for_each(|a| h.str(a));
            }
        }
    }
    h.finish64()
}

/// The global plan-cache key: program hash + scope fingerprint + outer
/// signature + statistics epoch + plan mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`program_hash`]/[`formula_hash`] of the enclosing top-level query.
    pub program: u64,
    /// [`scope_fingerprint`] of the scope being planned.
    pub scope: (u64, u64),
    /// [`outer_signature`] under which the scope is planned.
    pub sig: u64,
    /// The catalog's statistics epoch at plan time. Every `ANALYZE` (or
    /// statistics drop) bumps the epoch from a process-wide counter, so a
    /// re-`ANALYZE` invalidates cached plans without hashing the sketches
    /// themselves — and two distinct analyzed catalogs can never share an
    /// epoch, so their statistics-driven plans can't cross-pollute. `0`
    /// means "no statistics have ever been attached".
    pub epoch: u64,
    /// The planning mode (force modes plan differently by design).
    pub mode: PlanMode,
    /// Whether the scope was planned in the boolean (decorrelatable) role
    /// ([`crate::physical::plan_scope_boolean`]): the same scope structure
    /// plans differently as a build pipeline than as an emitting scope,
    /// so the two roles must never share a cache slot.
    pub decor: bool,
    /// Whether index-range access selection was enabled
    /// ([`crate::scope::ScopeSpec::indexes`]): engines running with the
    /// `ARC_INDEX=off` escape hatch must never be served an index plan
    /// another engine published, nor vice versa.
    pub indexes: bool,
}

// ---------------------------------------------------------------------------
// The global cache
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Mutex<HashMap<PlanKey, Arc<ScopePlan>>>> = OnceLock::new();

/// Hit/miss counters live in the `arc-trace` registry (`plan.cache.hit`
/// / `plan.cache.miss`) so `arc_trace::snapshot()` diffs cover them
/// alongside every other engine metric; [`global_stats`] reads the same
/// counters for the legacy API.
fn hit_counter() -> arc_trace::Counter {
    static C: OnceLock<arc_trace::Counter> = OnceLock::new();
    *C.get_or_init(|| arc_trace::counter("plan.cache.hit"))
}

fn miss_counter() -> arc_trace::Counter {
    static C: OnceLock<arc_trace::Counter> = OnceLock::new();
    *C.get_or_init(|| arc_trace::counter("plan.cache.miss"))
}

fn global() -> &'static Mutex<HashMap<PlanKey, Arc<ScopePlan>>> {
    GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Look up a plan in the process-wide cache.
pub fn global_lookup(key: &PlanKey) -> Option<Arc<ScopePlan>> {
    let found = global().lock().expect("plan cache").get(key).cloned();
    match found {
        Some(plan) => {
            hit_counter().inc();
            Some(plan)
        }
        None => {
            miss_counter().inc();
            None
        }
    }
}

/// Publish a freshly planned scope to the process-wide cache.
pub fn global_store(key: PlanKey, plan: Arc<ScopePlan>) {
    let mut map = global().lock().expect("plan cache");
    if map.len() >= GLOBAL_CAP {
        map.clear();
    }
    map.insert(key, plan);
}

/// Cache observability (tests and benchmarks assert against these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Global-cache lookups that found a plan.
    pub hits: u64,
    /// Global-cache lookups that missed.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// Snapshot the global cache counters (the `plan.cache.hit` /
/// `plan.cache.miss` registry counters plus the live entry count).
pub fn global_stats() -> CacheStats {
    CacheStats {
        hits: hit_counter().get(),
        misses: miss_counter().get(),
        entries: global().lock().expect("plan cache").len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::plan_scope;
    use crate::scope::{BindingSpec, NoOuter};
    use arc_core::dsl::*;

    fn pred(f: arc_core::ast::Formula) -> Predicate {
        match f {
            arc_core::ast::Formula::Pred(p) => p,
            other => panic!("expected predicate, got {other:?}"),
        }
    }

    #[test]
    fn program_hash_is_structural_not_positional() {
        let a = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
        );
        let b = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
        );
        assert_eq!(program_hash(&a), program_hash(&b), "two equal parses");
        let c = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "S")], and([assign("Q", "A", col("r", "A"))])),
        );
        assert_ne!(program_hash(&a), program_hash(&c), "different source");
    }

    #[test]
    fn scope_fingerprint_sees_rows_and_filters() {
        let schema: Vec<String> = vec!["A".into(), "B".into()];
        let filter = pred(gt(col("r", "A"), int(3)));
        let filters: Vec<&Predicate> = vec![&filter];
        let spec_of = |rows: usize, fs: &'static str| -> (u64, u64) {
            let other = pred(gt(col("r", "A"), int(4)));
            let filters2: Vec<&Predicate> = vec![&other];
            let spec = ScopeSpec {
                bindings: vec![BindingSpec {
                    var: "r",
                    source: SourceSpec::Relation {
                        schema: &schema,
                        rows: Some(rows),
                    },
                }],
                filters: if fs == "a" { &filters } else { &filters2 },
                outer: &NoOuter,
                estimator: None,
                indexes: true,
            };
            scope_fingerprint(&spec)
        };
        assert_eq!(spec_of(10, "a"), spec_of(10, "a"));
        assert_ne!(spec_of(10, "a"), spec_of(11, "a"), "row counts differ");
        assert_ne!(spec_of(10, "a"), spec_of(10, "b"), "filters differ");
    }

    #[test]
    fn outer_signature_tracks_availability_and_shadowing() {
        struct Outer(Vec<String>);
        impl OuterScope for Outer {
            fn attrs(&self, var: &str) -> Option<&[String]> {
                (var == "o").then_some(self.0.as_slice())
            }
        }
        let with_o = Outer(vec!["A".into()]);
        let filter = pred(eq(col("r", "A"), col("o", "A")));
        let filters: Vec<&Predicate> = vec![&filter];
        let bound = outer_signature(&["r"], &filters, std::iter::empty(), &with_o);
        let unbound = outer_signature(&["r"], &filters, std::iter::empty(), &NoOuter);
        assert_ne!(bound, unbound, "availability must change the signature");
        // Shadowed by a local: the outer binding is invisible either way.
        let shadowed = outer_signature(&["r", "o"], &filters, std::iter::empty(), &with_o);
        let shadowed2 = outer_signature(&["r", "o"], &filters, std::iter::empty(), &NoOuter);
        assert_eq!(shadowed, shadowed2);
    }

    #[test]
    fn global_cache_round_trips() {
        let schema: Vec<String> = vec!["A".into()];
        let spec = ScopeSpec {
            bindings: vec![BindingSpec {
                var: "r",
                source: SourceSpec::Relation {
                    schema: &schema,
                    rows: Some(5),
                },
            }],
            filters: &[],
            outer: &NoOuter,
            estimator: None,
            indexes: true,
        };
        let plan = Arc::new(plan_scope(&spec, PlanMode::Auto).unwrap());
        let key = PlanKey {
            program: 0xdead_beef,
            scope: scope_fingerprint(&spec),
            sig: 0,
            epoch: 0,
            mode: PlanMode::Auto,
            decor: false,
            indexes: true,
        };
        assert!(global_lookup(&key).is_none());
        global_store(key, plan.clone());
        let cached = global_lookup(&key).expect("stored plan");
        assert_eq!(*cached, *plan);
    }
}
