//! The stats-backed [`DistinctEstimator`]: catalog statistics
//! (`arc-stats` sketches) answering the planner's cardinality questions.
//!
//! This is "cost model v2": where the v1 estimator extrapolated a prefix
//! sample per query, this one reads the summaries an `ANALYZE` pass
//! already computed — multi-column distinct counts are correlation-capped
//! by the whole-row sketch ([`TableStats::distinct_cols`]), equality
//! selectivity is MCV-aware, and range selectivity comes from the
//! equi-depth histograms. `EXPLAIN` uses it directly over catalog
//! statistics; the execution engine layers a live prefix-sample fallback
//! on top for relations that have no statistics (intensional results,
//! small un-analyzed tables).

use crate::scope::DistinctEstimator;
use arc_core::ast::CmpOp;
use arc_core::value::Value;
use arc_stats::TableStats;
use std::sync::Arc;

/// A [`DistinctEstimator`] over per-binding table statistics (`None` for
/// bindings whose source has none: laterals, externals, abstracts,
/// un-analyzed relations).
pub struct TableStatsEstimator {
    tables: Vec<Option<Arc<TableStats>>>,
}

impl TableStatsEstimator {
    /// Wrap one statistics slot per scope binding, in binding order.
    pub fn new(tables: Vec<Option<Arc<TableStats>>>) -> Self {
        TableStatsEstimator { tables }
    }

    fn table(&self, binding: usize) -> Option<&TableStats> {
        self.tables.get(binding)?.as_deref()
    }
}

impl DistinctEstimator for TableStatsEstimator {
    fn distinct(&self, binding: usize, cols: &[usize]) -> Option<usize> {
        self.table(binding).map(|t| t.distinct_cols(cols) as usize)
    }

    fn selectivity(&self, binding: usize, col: usize, op: CmpOp, value: &Value) -> Option<f64> {
        self.table(binding)?.selectivity(col, op, value)
    }

    fn null_fraction(&self, binding: usize, col: usize) -> Option<f64> {
        let t = self.table(binding)?;
        let c = t.columns.get(col)?;
        Some(1.0 - c.non_null_fraction())
    }

    fn range_selectivity(
        &self,
        binding: usize,
        col: usize,
        lo: Option<(CmpOp, &Value)>,
        hi: Option<(CmpOp, &Value)>,
    ) -> Option<f64> {
        self.table(binding)?.range_selectivity(col, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_stats() -> Arc<TableStats> {
        // A(0..100 unique), B(90% zeros).
        let rows: Vec<Vec<Value>> = (0..100i64)
            .map(|i| vec![Value::Int(i), Value::Int(if i < 90 { 0 } else { i })])
            .collect();
        Arc::new(TableStats::analyze(2, &rows))
    }

    #[test]
    fn answers_through_the_trait() {
        let est = TableStatsEstimator::new(vec![Some(skewed_stats()), None]);
        assert_eq!(est.distinct(0, &[0]), Some(100));
        let hot = est.selectivity(0, 1, CmpOp::Eq, &Value::Int(0)).unwrap();
        assert!((hot - 0.9).abs() < 1e-9, "{hot}");
        let range = est.selectivity(0, 0, CmpOp::Gt, &Value::Int(89)).unwrap();
        assert!((range - 0.1).abs() < 0.05, "{range}");
        assert_eq!(est.null_fraction(0, 0), Some(0.0));
        // Statistics-free bindings answer unknown, not zero.
        assert_eq!(est.distinct(1, &[0]), None);
        assert_eq!(est.selectivity(1, 0, CmpOp::Eq, &Value::Int(1)), None);
        assert_eq!(est.distinct(7, &[0]), None, "out-of-range binding");
    }
}
