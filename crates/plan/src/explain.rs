//! Textual `EXPLAIN` / `EXPLAIN ANALYZE`: render a [`PlanNode`] tree as
//! an indented operator listing.
//!
//! The format is deliberately plain and stable (golden-tested): one
//! operator per line, two-space indentation per level, steps of a scope
//! numbered in execution order. A future diagram backend (higraph) walks
//! the same [`PlanNode`] tree instead of this renderer.
//!
//! [`render_analyze`] is the same tree annotated with **actuals** from an
//! `arc-trace` execution profile: per operator, `act=N (est=N, q=X.X)` —
//! the actual output cardinality against the planner's estimate and
//! their **q-error** `max(est/act, act/est)` (both sides clamped to ≥ 1
//! row; `q = 1.0` is a perfect estimate) — plus invocation counts,
//! candidate-row counts, and wall time where the engine recorded them.

use crate::query::PlanNode;
use arc_trace::{OpId, OpStats};
use std::fmt::Write as _;

/// Per-operator actuals source for [`render_analyze`]: maps a stable
/// operator id to what execution recorded for it, or `None` when the
/// operator never ran (its line renders estimate-only).
pub type Actuals<'x> = &'x dyn Fn(OpId) -> Option<OpStats>;

/// Render a plan tree as indented text (trailing newline included).
pub fn render(node: &PlanNode) -> String {
    render_with_threads(node, 1)
}

/// Render a plan tree for an engine running `threads`-way parallel
/// execution: the partition-axis step of each scope gains a
/// `partition(n)` operator prefix showing its scan will be split into
/// morsels across `n` threads. With `threads <= 1` this is exactly
/// [`render`] (sequential engines show sequential plans).
pub fn render_with_threads(node: &PlanNode, threads: usize) -> String {
    let mut out = String::new();
    render_into(node, 0, threads, None, &mut out);
    out
}

/// Render a plan tree annotated with execution actuals (`EXPLAIN
/// ANALYZE`). Operators the profile has no record of render exactly as
/// in [`render_with_threads`], so `render_analyze(n, t, &|_| None)`
/// degrades to the plain rendering.
pub fn render_analyze(node: &PlanNode, threads: usize, actuals: Actuals<'_>) -> String {
    let mut out = String::new();
    render_into(node, 0, threads, Some(actuals), &mut out);
    out
}

/// The q-error of an estimate: `max(est/act, act/est)` with both sides
/// clamped to ≥ 1 row (the standard convention — emptiness collapses the
/// ratio, and sub-row estimates are noise). `est` is the planner's
/// per-upstream-environment estimate, so the actual is normalized by the
/// operator's invocation count before comparing.
pub fn q_error(est: u64, rows_out: u64, calls: u64) -> f64 {
    let est = (est as f64).max(1.0);
    let per_call = if calls == 0 {
        rows_out as f64
    } else {
        rows_out as f64 / calls as f64
    }
    .max(1.0);
    (est / per_call).max(per_call / est)
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

fn render_into(
    node: &PlanNode,
    depth: usize,
    threads: usize,
    actuals: Option<Actuals<'_>>,
    out: &mut String,
) {
    match node {
        PlanNode::Program { definitions, query } => {
            line(out, depth, "program");
            for d in definitions {
                render_into(d, depth + 1, threads, actuals, out);
            }
            if let Some(q) = query {
                line(out, depth + 1, "query");
                render_into(q, depth + 2, threads, actuals, out);
            }
        }
        PlanNode::Fixpoint { relations, inputs } => {
            line(out, depth, &format!("fixpoint [{}]", relations.join(", ")));
            for i in inputs {
                render_into(i, depth + 1, threads, actuals, out);
            }
        }
        PlanNode::Project { head, attrs, input } => {
            line(out, depth, &format!("project {head}({})", attrs.join(", ")));
            render_into(input, depth + 1, threads, actuals, out);
        }
        PlanNode::Union { inputs } => {
            line(out, depth, "union");
            for i in inputs {
                render_into(i, depth + 1, threads, actuals, out);
            }
        }
        PlanNode::Aggregate {
            keys,
            assigns,
            tests,
            input,
        } => {
            let keys = if keys.is_empty() {
                "γ∅".to_string()
            } else {
                format!("γ {}", keys.join(", "))
            };
            line(out, depth, &format!("aggregate {keys}"));
            for a in assigns {
                line(out, depth + 1, &format!("agg: {a}"));
            }
            for t in tests {
                line(out, depth + 1, &format!("having: {t}"));
            }
            render_into(input, depth + 1, threads, actuals, out);
        }
        PlanNode::Scope {
            scope_id,
            steps,
            prelude,
            residual,
            assigns,
            children,
        } => {
            let mut text = String::from("scope");
            if let Some(s) = actuals.and_then(|a| a(OpId::scope(*scope_id))) {
                let _ = write!(text, " act={} calls={}", s.rows_out, s.calls);
                if s.nanos > 0 {
                    let _ = write!(text, " time={}", fmt_nanos(s.nanos));
                }
            }
            line(out, depth, &text);
            for p in prelude {
                line(out, depth + 1, &format!("prelude: {p}"));
            }
            for (i, s) in steps.iter().enumerate() {
                let partition = if s.partition && threads > 1 {
                    format!("partition({threads}) ")
                } else {
                    String::new()
                };
                let mut text = format!(
                    "{}: {partition}{} {} as {}",
                    i + 1,
                    s.access,
                    s.source,
                    s.var
                );
                match actuals.and_then(|a| a(OpId::step(*scope_id, i))) {
                    Some(a) => {
                        let q = q_error(s.est, a.rows_out, a.calls);
                        let _ = write!(
                            text,
                            " act={} (est={}, q={:.1}) calls={}",
                            a.rows_out, s.est, q, a.calls
                        );
                        if a.rows_in != a.rows_out {
                            // Candidates the access path yielded vs rows
                            // surviving pushed filters — e.g. index-range
                            // survivors vs post-filter drops.
                            let _ = write!(text, " in={}", a.rows_in);
                        }
                        if a.nanos > 0 {
                            let _ = write!(text, " time={}", fmt_nanos(a.nanos));
                        }
                    }
                    None => {
                        let _ = write!(text, " (est={})", s.est);
                    }
                }
                line(out, depth + 1, &text);
                for f in &s.pushed {
                    line(out, depth + 2, &format!("filter: {f}"));
                }
            }
            for r in residual {
                line(out, depth + 1, &format!("residual: {r}"));
            }
            for a in assigns {
                line(out, depth + 1, &format!("emit: {a}"));
            }
            for c in children {
                line(out, depth + 1, &format!("[{}]", c.label));
                render_into(&c.plan, depth + 2, threads, actuals, out);
            }
        }
        PlanNode::SemiJoin {
            scope_id,
            anti,
            keys,
            prelude,
            est_keys,
            build,
        } => {
            let op = if *anti { "anti-join" } else { "semi-join" };
            let on = if keys.is_empty() {
                // Correlation is prelude-only (or absent): the build
                // collapses to a cached non-emptiness verdict.
                String::from("[∅]")
            } else {
                format!("[{}]", keys.join(", "))
            };
            let mut text = format!("{op} on {on}");
            match actuals.and_then(|a| a(OpId::semi(*scope_id))) {
                // Probe-side actuals live on the scope-level operator:
                // `rows_in` = keys in the build set, `calls` = probes,
                // `rows_out` = probe hits, `nanos` = build time.
                Some(a) => {
                    let q = q_error(*est_keys, a.rows_in, 1);
                    let _ = write!(
                        text,
                        " act={} (est={}, q={:.1}) probes={} hits={}",
                        a.rows_in, est_keys, q, a.calls, a.rows_out
                    );
                    if a.nanos > 0 {
                        let _ = write!(text, " build={}", fmt_nanos(a.nanos));
                    }
                }
                None => {
                    let _ = write!(text, " (est={est_keys})");
                }
            }
            line(out, depth, &text);
            for p in prelude {
                line(out, depth + 1, &format!("probe-filter: {p}"));
            }
            line(out, depth + 1, "build (once)");
            render_into(build, depth + 2, threads, actuals, out);
        }
        PlanNode::OuterJoin {
            tree,
            filters,
            assigns,
        } => {
            line(out, depth, &format!("outer-join {tree} (materialized)"));
            for f in filters {
                line(out, depth + 1, &format!("filter: {f}"));
            }
            for a in assigns {
                line(out, depth + 1, &format!("emit: {a}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_clamps_and_is_symmetric() {
        assert_eq!(q_error(10, 10, 1), 1.0);
        assert_eq!(q_error(10, 1, 1), 10.0);
        assert_eq!(q_error(1, 10, 1), 10.0);
        // Per-call normalization: 40 rows over 4 calls against est=10.
        assert_eq!(q_error(10, 40, 4), 1.0);
        // Emptiness clamps to one row instead of collapsing the ratio.
        assert_eq!(q_error(5, 0, 1), 5.0);
        assert_eq!(q_error(0, 0, 0), 1.0);
    }
}
