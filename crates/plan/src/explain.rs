//! Textual `EXPLAIN`: render a [`PlanNode`] tree as an indented operator
//! listing.
//!
//! The format is deliberately plain and stable (golden-tested): one
//! operator per line, two-space indentation per level, steps of a scope
//! numbered in execution order. A future diagram backend (higraph) walks
//! the same [`PlanNode`] tree instead of this renderer.

use crate::query::PlanNode;
use std::fmt::Write as _;

/// Render a plan tree as indented text (trailing newline included).
pub fn render(node: &PlanNode) -> String {
    render_with_threads(node, 1)
}

/// Render a plan tree for an engine running `threads`-way parallel
/// execution: the partition-axis step of each scope gains a
/// `partition(n)` operator prefix showing its scan will be split into
/// morsels across `n` threads. With `threads <= 1` this is exactly
/// [`render`] (sequential engines show sequential plans).
pub fn render_with_threads(node: &PlanNode, threads: usize) -> String {
    let mut out = String::new();
    render_into(node, 0, threads, &mut out);
    out
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

fn render_into(node: &PlanNode, depth: usize, threads: usize, out: &mut String) {
    match node {
        PlanNode::Program { definitions, query } => {
            line(out, depth, "program");
            for d in definitions {
                render_into(d, depth + 1, threads, out);
            }
            if let Some(q) = query {
                line(out, depth + 1, "query");
                render_into(q, depth + 2, threads, out);
            }
        }
        PlanNode::Fixpoint { relations, inputs } => {
            line(out, depth, &format!("fixpoint [{}]", relations.join(", ")));
            for i in inputs {
                render_into(i, depth + 1, threads, out);
            }
        }
        PlanNode::Project { head, attrs, input } => {
            line(out, depth, &format!("project {head}({})", attrs.join(", ")));
            render_into(input, depth + 1, threads, out);
        }
        PlanNode::Union { inputs } => {
            line(out, depth, "union");
            for i in inputs {
                render_into(i, depth + 1, threads, out);
            }
        }
        PlanNode::Aggregate {
            keys,
            assigns,
            tests,
            input,
        } => {
            let keys = if keys.is_empty() {
                "γ∅".to_string()
            } else {
                format!("γ {}", keys.join(", "))
            };
            line(out, depth, &format!("aggregate {keys}"));
            for a in assigns {
                line(out, depth + 1, &format!("agg: {a}"));
            }
            for t in tests {
                line(out, depth + 1, &format!("having: {t}"));
            }
            render_into(input, depth + 1, threads, out);
        }
        PlanNode::Scope {
            steps,
            prelude,
            residual,
            assigns,
            children,
        } => {
            line(out, depth, "scope");
            for p in prelude {
                line(out, depth + 1, &format!("prelude: {p}"));
            }
            for (i, s) in steps.iter().enumerate() {
                let partition = if s.partition && threads > 1 {
                    format!("partition({threads}) ")
                } else {
                    String::new()
                };
                let mut text = format!(
                    "{}: {partition}{} {} as {}",
                    i + 1,
                    s.access,
                    s.source,
                    s.var
                );
                let _ = write!(text, " (est={})", s.est);
                line(out, depth + 1, &text);
                for f in &s.pushed {
                    line(out, depth + 2, &format!("filter: {f}"));
                }
            }
            for r in residual {
                line(out, depth + 1, &format!("residual: {r}"));
            }
            for a in assigns {
                line(out, depth + 1, &format!("emit: {a}"));
            }
            for c in children {
                line(out, depth + 1, &format!("[{}]", c.label));
                render_into(&c.plan, depth + 2, threads, out);
            }
        }
        PlanNode::SemiJoin {
            anti,
            keys,
            prelude,
            est_keys,
            build,
        } => {
            let op = if *anti { "anti-join" } else { "semi-join" };
            let on = if keys.is_empty() {
                // Correlation is prelude-only (or absent): the build
                // collapses to a cached non-emptiness verdict.
                String::from("[∅]")
            } else {
                format!("[{}]", keys.join(", "))
            };
            line(out, depth, &format!("{op} on {on} (est={est_keys})"));
            for p in prelude {
                line(out, depth + 1, &format!("probe-filter: {p}"));
            }
            line(out, depth + 1, "build (once)");
            render_into(build, depth + 2, threads, out);
        }
        PlanNode::OuterJoin {
            tree,
            filters,
            assigns,
        } => {
            line(out, depth, &format!("outer-join {tree} (materialized)"));
            for f in filters {
                line(out, depth + 1, &format!("filter: {f}"));
            }
            for a in assigns {
                line(out, depth + 1, &format!("emit: {a}"));
            }
        }
    }
}
