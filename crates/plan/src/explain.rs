//! Textual `EXPLAIN` / `EXPLAIN ANALYZE`: render a [`PlanNode`] tree as
//! an indented operator listing.
//!
//! The format is deliberately plain and stable (golden-tested): one
//! operator per line, two-space indentation per level, steps of a scope
//! numbered in execution order. A future diagram backend (higraph) walks
//! the same [`PlanNode`] tree instead of this renderer.
//!
//! [`render_analyze`] is the same tree annotated with **actuals** from an
//! `arc-trace` execution profile: per operator, `act=N (est=N, q=X.X)` —
//! the actual output cardinality against the planner's estimate and
//! their **q-error** `max(est/act, act/est)` (both sides clamped to ≥ 1
//! row; `q = 1.0` is a perfect estimate) — plus invocation counts,
//! candidate-row counts, and wall time where the engine recorded them.

use crate::query::PlanNode;
use arc_trace::{OpId, OpStats};
use std::fmt::Write as _;

/// Per-operator actuals source for [`render_analyze`]: maps a stable
/// operator id to what execution recorded for it, or `None` when the
/// operator never ran (its line renders estimate-only).
pub type Actuals<'x> = &'x dyn Fn(OpId) -> Option<OpStats>;

/// Render a plan tree as indented text (trailing newline included).
pub fn render(node: &PlanNode) -> String {
    render_with_threads(node, 1)
}

/// Render a plan tree for an engine running `threads`-way parallel
/// execution: the partition-axis step of each scope gains a
/// `partition(n)` operator prefix showing its scan will be split into
/// morsels across `n` threads. With `threads <= 1` this is exactly
/// [`render`] (sequential engines show sequential plans).
pub fn render_with_threads(node: &PlanNode, threads: usize) -> String {
    let mut out = String::new();
    render_into(node, 0, threads, None, &mut out);
    out
}

/// Render a plan tree for an engine running under a memory budget:
/// exactly [`render_with_threads`], followed by a one-line governance
/// note stating the budget and the degradation contract. The note makes
/// `EXPLAIN` honest under `ARC_MEM_BUDGET`: every `hash-join` /
/// `index-range` / `semi-join` line above it is an *intent* the guard
/// may demote to the streaming / nested fallback at run time — same
/// rows, different cost — and only hard exhaustion aborts.
pub fn render_governed(node: &PlanNode, threads: usize, mem_budget: Option<usize>) -> String {
    let mut out = render_with_threads(node, threads);
    if let Some(budget) = mem_budget {
        line(
            &mut out,
            0,
            &format!(
                "governance: memory budget {budget} B — builds over budget degrade to streaming fallbacks (guard.degradations counts them)"
            ),
        );
    }
    out
}

/// Render a plan tree annotated with execution actuals (`EXPLAIN
/// ANALYZE`). Operators the profile has no record of render exactly as
/// in [`render_with_threads`], so `render_analyze(n, t, &|_| None)`
/// degrades to the plain rendering.
///
/// When any operator *did* record actuals, the rendering ends with a
/// `misestimates` footer: the top 3 operators by [`q_error`] with
/// `q >= 2.0` (one line each, worst first), or a one-line all-clear
/// naming the worst q observed — the first place to look when a plan
/// misbehaves after `ANALYZE`.
pub fn render_analyze(node: &PlanNode, threads: usize, actuals: Actuals<'_>) -> String {
    let mut out = String::new();
    render_into(node, 0, threads, Some(actuals), &mut out);
    let mut mis: Vec<(f64, String)> = Vec::new();
    collect_misestimates(node, actuals, &mut mis);
    if !mis.is_empty() {
        mis.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        if mis[0].0 >= 2.0 {
            line(&mut out, 0, "misestimates (top 3 by q-error):");
            for (_, text) in mis.iter().take(3).filter(|(q, _)| *q >= 2.0) {
                line(&mut out, 1, text);
            }
        } else {
            line(
                &mut out,
                0,
                &format!("misestimates: none (worst q={:.1})", mis[0].0),
            );
        }
    }
    out
}

/// Walk the tree collecting a `(q-error, rendered line)` entry per
/// operator that has both an estimate and recorded actuals — the same
/// ids and the same [`q_error`] normalization the inline annotations
/// use, so the footer is joinable back to the lines above it.
fn collect_misestimates(node: &PlanNode, actuals: Actuals<'_>, out: &mut Vec<(f64, String)>) {
    match node {
        PlanNode::Program { definitions, query } => {
            for d in definitions {
                collect_misestimates(d, actuals, out);
            }
            if let Some(q) = query {
                collect_misestimates(q, actuals, out);
            }
        }
        PlanNode::Fixpoint { inputs, .. } | PlanNode::Union { inputs } => {
            for i in inputs {
                collect_misestimates(i, actuals, out);
            }
        }
        PlanNode::Project { input, .. } | PlanNode::Aggregate { input, .. } => {
            collect_misestimates(input, actuals, out);
        }
        PlanNode::Scope {
            scope_id,
            steps,
            children,
            ..
        } => {
            for (i, s) in steps.iter().enumerate() {
                if let Some(a) = actuals(OpId::step(*scope_id, i)) {
                    let q = q_error(s.est, a.rows_out, a.calls);
                    out.push((
                        q,
                        format!(
                            "{} {} as {}: q={:.1} (est={}, act={}, calls={})",
                            s.access, s.source, s.var, q, s.est, a.rows_out, a.calls
                        ),
                    ));
                }
            }
            for c in children {
                collect_misestimates(&c.plan, actuals, out);
            }
        }
        PlanNode::SemiJoin {
            scope_id,
            anti,
            keys,
            est_keys,
            build,
            ..
        } => {
            if let Some(a) = actuals(OpId::semi(*scope_id)) {
                let q = q_error(*est_keys, a.rows_in, 1);
                let op = if *anti { "anti-join" } else { "semi-join" };
                out.push((
                    q,
                    format!(
                        "{op} on [{}]: q={:.1} (est={}, keys={})",
                        keys.join(", "),
                        q,
                        est_keys,
                        a.rows_in
                    ),
                ));
            }
            collect_misestimates(build, actuals, out);
        }
        PlanNode::OuterJoin { .. } => {}
    }
}

/// Timeline display names for span export: map each plan operator's
/// [`OpId`] to the same text `EXPLAIN` prints for it — steps as
/// `access source as var`, scopes as `scope [vars]`, semi-joins as
/// `semi-join build on [keys]` — so a Perfetto block is joinable back to
/// its `EXPLAIN ANALYZE` line by name as well as by `args.op`.
pub fn span_names(node: &PlanNode) -> std::collections::BTreeMap<OpId, String> {
    let mut names = std::collections::BTreeMap::new();
    collect_span_names(node, &mut names);
    names
}

fn collect_span_names(node: &PlanNode, out: &mut std::collections::BTreeMap<OpId, String>) {
    match node {
        PlanNode::Program { definitions, query } => {
            for d in definitions {
                collect_span_names(d, out);
            }
            if let Some(q) = query {
                collect_span_names(q, out);
            }
        }
        PlanNode::Fixpoint { inputs, .. } | PlanNode::Union { inputs } => {
            for i in inputs {
                collect_span_names(i, out);
            }
        }
        PlanNode::Project { input, .. } | PlanNode::Aggregate { input, .. } => {
            collect_span_names(input, out);
        }
        PlanNode::Scope {
            scope_id,
            steps,
            children,
            ..
        } => {
            let vars: Vec<&str> = steps.iter().map(|s| s.var.as_str()).collect();
            out.insert(
                OpId::scope(*scope_id),
                format!("scope [{}]", vars.join(", ")),
            );
            for (i, s) in steps.iter().enumerate() {
                out.insert(
                    OpId::step(*scope_id, i),
                    format!("{} {} as {}", s.access, s.source, s.var),
                );
            }
            for c in children {
                collect_span_names(&c.plan, out);
            }
        }
        PlanNode::SemiJoin {
            scope_id,
            anti,
            keys,
            build,
            ..
        } => {
            let op = if *anti { "anti-join" } else { "semi-join" };
            out.insert(
                OpId::semi(*scope_id),
                format!("{op} build on [{}]", keys.join(", ")),
            );
            collect_span_names(build, out);
        }
        PlanNode::OuterJoin { .. } => {}
    }
}

/// The q-error of an estimate: `max(est/act, act/est)` with both sides
/// clamped to ≥ 1 row (the standard convention — emptiness collapses the
/// ratio, and sub-row estimates are noise). `est` is the planner's
/// per-upstream-environment estimate, so the actual is normalized by the
/// operator's invocation count before comparing.
pub fn q_error(est: u64, rows_out: u64, calls: u64) -> f64 {
    let est = (est as f64).max(1.0);
    let per_call = if calls == 0 {
        rows_out as f64
    } else {
        rows_out as f64 / calls as f64
    }
    .max(1.0);
    (est / per_call).max(per_call / est)
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

fn render_into(
    node: &PlanNode,
    depth: usize,
    threads: usize,
    actuals: Option<Actuals<'_>>,
    out: &mut String,
) {
    match node {
        PlanNode::Program { definitions, query } => {
            line(out, depth, "program");
            for d in definitions {
                render_into(d, depth + 1, threads, actuals, out);
            }
            if let Some(q) = query {
                line(out, depth + 1, "query");
                render_into(q, depth + 2, threads, actuals, out);
            }
        }
        PlanNode::Fixpoint { relations, inputs } => {
            line(out, depth, &format!("fixpoint [{}]", relations.join(", ")));
            for i in inputs {
                render_into(i, depth + 1, threads, actuals, out);
            }
        }
        PlanNode::Project { head, attrs, input } => {
            line(out, depth, &format!("project {head}({})", attrs.join(", ")));
            render_into(input, depth + 1, threads, actuals, out);
        }
        PlanNode::Union { inputs } => {
            line(out, depth, "union");
            for i in inputs {
                render_into(i, depth + 1, threads, actuals, out);
            }
        }
        PlanNode::Aggregate {
            keys,
            assigns,
            tests,
            input,
        } => {
            let keys = if keys.is_empty() {
                "γ∅".to_string()
            } else {
                format!("γ {}", keys.join(", "))
            };
            line(out, depth, &format!("aggregate {keys}"));
            for a in assigns {
                line(out, depth + 1, &format!("agg: {a}"));
            }
            for t in tests {
                line(out, depth + 1, &format!("having: {t}"));
            }
            render_into(input, depth + 1, threads, actuals, out);
        }
        PlanNode::Scope {
            scope_id,
            steps,
            prelude,
            residual,
            assigns,
            children,
        } => {
            let mut text = String::from("scope");
            if let Some(s) = actuals.and_then(|a| a(OpId::scope(*scope_id))) {
                let _ = write!(text, " act={} calls={}", s.rows_out, s.calls);
                if s.nanos > 0 {
                    let _ = write!(text, " time={}", fmt_nanos(s.nanos));
                }
            }
            line(out, depth, &text);
            for p in prelude {
                line(out, depth + 1, &format!("prelude: {p}"));
            }
            for (i, s) in steps.iter().enumerate() {
                let partition = if s.partition && threads > 1 {
                    format!("partition({threads}) ")
                } else {
                    String::new()
                };
                let mut text = format!(
                    "{}: {partition}{} {} as {}",
                    i + 1,
                    s.access,
                    s.source,
                    s.var
                );
                match actuals.and_then(|a| a(OpId::step(*scope_id, i))) {
                    Some(a) => {
                        let q = q_error(s.est, a.rows_out, a.calls);
                        let _ = write!(
                            text,
                            " act={} (est={}, q={:.1}) calls={}",
                            a.rows_out, s.est, q, a.calls
                        );
                        if a.rows_in != a.rows_out {
                            // Candidates the access path yielded vs rows
                            // surviving pushed filters — e.g. index-range
                            // survivors vs post-filter drops.
                            let _ = write!(text, " in={}", a.rows_in);
                        }
                        if a.nanos > 0 {
                            let _ = write!(text, " time={}", fmt_nanos(a.nanos));
                        }
                    }
                    None => {
                        let _ = write!(text, " (est={})", s.est);
                    }
                }
                line(out, depth + 1, &text);
                for f in &s.pushed {
                    line(out, depth + 2, &format!("filter: {f}"));
                }
            }
            for r in residual {
                line(out, depth + 1, &format!("residual: {r}"));
            }
            for a in assigns {
                line(out, depth + 1, &format!("emit: {a}"));
            }
            for c in children {
                line(out, depth + 1, &format!("[{}]", c.label));
                render_into(&c.plan, depth + 2, threads, actuals, out);
            }
        }
        PlanNode::SemiJoin {
            scope_id,
            anti,
            keys,
            prelude,
            est_keys,
            build,
        } => {
            let op = if *anti { "anti-join" } else { "semi-join" };
            let on = if keys.is_empty() {
                // Correlation is prelude-only (or absent): the build
                // collapses to a cached non-emptiness verdict.
                String::from("[∅]")
            } else {
                format!("[{}]", keys.join(", "))
            };
            let mut text = format!("{op} on {on}");
            match actuals.and_then(|a| a(OpId::semi(*scope_id))) {
                // Probe-side actuals live on the scope-level operator:
                // `rows_in` = keys in the build set, `calls` = probes,
                // `rows_out` = probe hits, `nanos` = build time.
                Some(a) => {
                    let q = q_error(*est_keys, a.rows_in, 1);
                    let _ = write!(
                        text,
                        " act={} (est={}, q={:.1}) probes={} hits={}",
                        a.rows_in, est_keys, q, a.calls, a.rows_out
                    );
                    if a.nanos > 0 {
                        let _ = write!(text, " build={}", fmt_nanos(a.nanos));
                    }
                }
                None => {
                    let _ = write!(text, " (est={est_keys})");
                }
            }
            line(out, depth, &text);
            for p in prelude {
                line(out, depth + 1, &format!("probe-filter: {p}"));
            }
            line(out, depth + 1, "build (once)");
            render_into(build, depth + 2, threads, actuals, out);
        }
        PlanNode::OuterJoin {
            tree,
            filters,
            assigns,
        } => {
            line(out, depth, &format!("outer-join {tree} (materialized)"));
            for f in filters {
                line(out, depth + 1, &format!("filter: {f}"));
            }
            for a in assigns {
                line(out, depth + 1, &format!("emit: {a}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_clamps_and_is_symmetric() {
        assert_eq!(q_error(10, 10, 1), 1.0);
        assert_eq!(q_error(10, 1, 1), 10.0);
        assert_eq!(q_error(1, 10, 1), 10.0);
        // Per-call normalization: 40 rows over 4 calls against est=10.
        assert_eq!(q_error(10, 40, 4), 1.0);
        // Emptiness clamps to one row instead of collapsing the ratio.
        assert_eq!(q_error(5, 0, 1), 5.0);
        assert_eq!(q_error(0, 0, 0), 1.0);
    }
}
