//! # arc-plan — logical/physical query plans for ARC
//!
//! The paper positions ARC as an *abstract* relational layer: many surface
//! languages (SQL, Datalog, comprehension text, diagrams) lower into it,
//! and engines consume it. This crate is the consuming seam: an explicit
//! plan IR between the bound AST and the evaluator, so that optimization
//! decisions are **per-operator plan choices** rather than global engine
//! switches.
//!
//! ## Layers
//!
//! | module       | layer                                                       |
//! |--------------|-------------------------------------------------------------|
//! | [`analysis`] | scope-body analysis: predicate roles, free variables        |
//! | [`scope`]    | planner inputs: abstract scope descriptions + statistics    |
//! | [`estimator`]| cost model v2: `ANALYZE` sketches answering cardinalities   |
//! | [`logical`]  | logical passes: equality-predicate extraction               |
//! | [`physical`] | physical plans: join ordering, access selection, pushdown   |
//! | [`cache`]    | plan caching: hashable scope/program keys, global plan cache|
//! | [`query`]    | whole-query plan trees (project/aggregate/scope/union/fixpoint) |
//! | [`explain`]  | textual `EXPLAIN` rendering of plan trees                   |
//! | [`normalize`]| structural normalization shared with `arc-analysis`         |
//!
//! ## The pipeline
//!
//! For every quantifier scope, [`physical::plan_scope`] runs:
//! **equality extraction** → **greedy join ordering** (by estimated
//! cardinality, honoring external/abstract/lateral placement constraints)
//! → **per-operator access selection** (each join step independently picks
//! a hash probe or a scan) → **predicate pushdown** (each filter runs at
//! the earliest step where its variables are bound). The force modes
//! ([`physical::PlanMode::ForceNestedLoop`]/[`ForceHashJoin`]) pin
//! declaration order and leaf filters so the engine's strategy-equivalence
//! suite keeps its tuple-for-tuple guarantee.
//!
//! [`ForceHashJoin`]: physical::PlanMode::ForceHashJoin
//!
//! The crate depends only on `arc-core`: the engine implements the small
//! [`scope::OuterScope`] / [`scope::DistinctEstimator`] /
//! [`query::SourceResolver`] traits to feed it live statistics, and
//! `EXPLAIN` runs the same planner over catalog-level statistics.

#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod estimator;
pub mod explain;
pub mod logical;
pub mod normalize;
pub mod physical;
pub mod query;
pub mod scope;

pub use cache::{formula_hash, program_hash, PlanKey};
pub use estimator::TableStatsEstimator;
pub use explain::{
    q_error, render, render_analyze, render_governed, render_with_threads, span_names, Actuals,
};
pub use logical::const_cmp;
pub use normalize::{normalize_collection, normalize_formula};
pub use physical::{
    decorrelatable_shape, plan_scope, plan_scope_boolean, planner_runs, Access, CorrelatedKey,
    Decorrelation, EqInput, PlanMode, ProbeKey, ScopePlan, Step, INDEX_MAX_FRACTION,
    PARALLEL_MIN_ROWS,
};
pub use query::{
    lower_collection, lower_collection_opts, lower_program, lower_program_opts, scope_identity,
    LowerError, PlanNode, ResolvedSource, SourceKind, SourceResolver,
};
pub use scope::{
    BindingSpec, DistinctEstimator, NoOuter, OuterScope, PlanError, ScopeSpec, SourceSpec,
};
