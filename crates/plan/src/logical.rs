//! The logical side of scope planning: equality-predicate extraction and
//! predicate classification.
//!
//! These are the analyses the optimizer passes consume: which filters are
//! equi-join edges (and in which orientation), and which variables a
//! predicate touches. They operate on the bound AST's predicate leaves —
//! the planner never rewrites the AST itself, it only *indexes* into it,
//! so the physical plan can refer back to predicates by position.

use arc_core::ast::{AttrRef, CmpOp, Predicate, Scalar};
use arc_core::value::Value;

/// One orientation of an equality filter `var.attr = expr`: the bound side
/// is an attribute reference, the other side is an arbitrary scalar.
///
/// A predicate with attribute references on both sides yields two edges
/// (one per orientation), mirroring the evaluator's `equality_pair`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqEdge {
    /// Index of the originating predicate in the scope's filter list.
    pub filter: usize,
    /// The bound-side variable.
    pub var: String,
    /// The bound-side attribute.
    pub attr: String,
    /// `true` when the bound attribute is the comparison's left operand
    /// (the probe/input expression is then the right operand).
    pub attr_on_left: bool,
}

/// Extract every equality edge from the scope's filters, in filter order
/// (left orientation before right within one predicate). This is the
/// **equality-predicate extraction pass**: the edges drive hash-probe key
/// selection, external access-pattern inputs, and abstract-relation
/// determination.
pub fn extract_equalities(filters: &[&Predicate]) -> Vec<EqEdge> {
    let mut out = Vec::new();
    for (i, p) in filters.iter().enumerate() {
        if let Predicate::Cmp {
            left,
            op: CmpOp::Eq,
            right,
        } = p
        {
            if let Scalar::Attr(a) = left {
                out.push(EqEdge {
                    filter: i,
                    var: a.var.clone(),
                    attr: a.attr.clone(),
                    attr_on_left: true,
                });
            }
            if let Scalar::Attr(a) = right {
                out.push(EqEdge {
                    filter: i,
                    var: a.var.clone(),
                    attr: a.attr.clone(),
                    attr_on_left: false,
                });
            }
        }
    }
    out
}

/// The scalar on the *other* side of an equality edge (the probe or input
/// expression).
pub fn other_side(p: &Predicate, attr_on_left: bool) -> &Scalar {
    match p {
        Predicate::Cmp { left, right, .. } => {
            if attr_on_left {
                right
            } else {
                left
            }
        }
        Predicate::IsNull { expr, .. } => expr, // unreachable for equality edges
    }
}

/// The two sides of an equality predicate in *(local, outer)* orientation
/// for a decorrelated correlated key: with `local_on_left` the comparison
/// reads `local = outer`, otherwise `outer = local`. The first returned
/// scalar is the build-side (scope-local) expression, the second the
/// probe-side (outer) expression.
pub fn eq_sides(p: &Predicate, local_on_left: bool) -> (&Scalar, &Scalar) {
    match p {
        Predicate::Cmp { left, right, .. } => {
            if local_on_left {
                (left, right)
            } else {
                (right, left)
            }
        }
        // Unreachable for correlated keys (they are equality comparisons by
        // construction); kept total for API robustness.
        Predicate::IsNull { expr, .. } => (expr, expr),
    }
}

/// Classify a predicate as a **constant comparison** on one attribute of
/// `var`: `var.attr op const` or `const op var.attr` (the operator is
/// flipped into attribute-on-the-left orientation). Returns the schema
/// position of the attribute, the oriented operator, and the constant —
/// or `None` for any other shape (other variables, attr-vs-attr,
/// `IS NULL`, unknown attributes).
///
/// This is the **one** classifier behind index-range planning: the
/// planner uses it to pick which filters an ordered-index bound may
/// consume, and the engine re-derives the bound keys from the same
/// classification, so the two can never disagree about what a consumed
/// filter means.
pub fn const_cmp<'a>(
    p: &'a Predicate,
    var: &str,
    schema: &[String],
) -> Option<(usize, CmpOp, &'a Value)> {
    let Predicate::Cmp { left, op, right } = p else {
        return None;
    };
    let (attr, op, value) = match (left, right) {
        (Scalar::Attr(a), Scalar::Const(v)) => (a, *op, v),
        (Scalar::Const(v), Scalar::Attr(a)) => (a, op.flipped(), v),
        _ => return None,
    };
    if attr.var != var {
        return None;
    }
    let col = schema.iter().position(|s| s == &attr.attr)?;
    Some((col, op, value))
}

/// All attribute references of a predicate, in occurrence order.
pub fn pred_attr_refs(p: &Predicate) -> Vec<&AttrRef> {
    match p {
        Predicate::Cmp { left, right, .. } => {
            let mut out = left.attr_refs();
            out.extend(right.attr_refs());
            out
        }
        Predicate::IsNull { expr, .. } => expr.attr_refs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::dsl::*;

    #[test]
    fn extraction_orients_both_sides() {
        let p = match eq(col("r", "B"), col("s", "B")) {
            arc_core::ast::Formula::Pred(p) => p,
            _ => unreachable!(),
        };
        let filters = [&p];
        let edges = extract_equalities(&filters);
        assert_eq!(edges.len(), 2);
        assert_eq!((edges[0].var.as_str(), edges[0].attr_on_left), ("r", true));
        assert_eq!((edges[1].var.as_str(), edges[1].attr_on_left), ("s", false));
    }

    #[test]
    fn non_equalities_yield_no_edges() {
        let p = match lt(col("r", "B"), col("s", "B")) {
            arc_core::ast::Formula::Pred(p) => p,
            _ => unreachable!(),
        };
        let filters = [&p];
        assert!(extract_equalities(&filters).is_empty());
    }
}
