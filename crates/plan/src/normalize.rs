//! Structural normalization shared by the planner and the analysis
//! rewrites.
//!
//! Before the plan layer existed, `arc-analysis` normalized connective
//! trees ad hoc while the engine never saw any normalization at all. The
//! plan layer is the natural owner: lowering wants bodies in flattened
//! conjunction form, and rewrites want the same canonical shape before
//! pattern-matching. Both now consult this module.

use arc_core::ast::{Collection, Formula};

/// Normalize a collection: flatten nested `And`/`Or`, unwrap singleton
/// connectives, and drop double negations (see [`Formula::normalized`]),
/// recursively through nested collections.
pub fn normalize_collection(c: &Collection) -> Collection {
    c.normalized()
}

/// Normalize a bare formula (sentences, scope bodies).
pub fn normalize_formula(f: &Formula) -> Formula {
    f.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::dsl::*;

    #[test]
    fn flattens_connectives() {
        let c = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([and([assign("Q", "A", col("r", "A"))]), and([])]),
            ),
        );
        let n = normalize_collection(&c);
        match &n.body {
            Formula::Quant(q) => {
                // `(A ∧ (B)) ∧ ()` flattens to a single conjunct.
                assert_eq!(q.body.conjuncts().len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
