//! The physical scope plan and the planning pipeline.
//!
//! [`plan_scope`] turns a [`ScopeSpec`] into an executable [`ScopePlan`]:
//!
//! 1. **equality extraction** ([`crate::logical::extract_equalities`]);
//! 2. **join ordering** — greedy by estimated cardinality under
//!    [`PlanMode::Auto`], declaration order under the force modes (which
//!    exist so the engine's strategy-equivalence suite keeps its
//!    tuple-for-tuple, *same emission order* guarantee). Estimates are
//!    statistics-aware when the host supplies a
//!    [`DistinctEstimator`](crate::scope::DistinctEstimator) backed by
//!    `ANALYZE` sketches: scans shrink by the MCV/histogram selectivity
//!    of their constant filters, probes divide by correlation-capped
//!    distinct counts — and without statistics every formula degrades to
//!    the former row-count behaviour;
//! 3. **per-operator access selection** — each relation step independently
//!    becomes a [`Access::HashProbe`] when an equality edge reaches it from
//!    already-placed or outer variables, and a plain [`Access::Scan`]
//!    otherwise;
//! 4. **predicate pushdown** — each filter is scheduled at the earliest
//!    step where all its variables are bound (Auto only; the force modes
//!    evaluate every filter at the leaf, like the paper's reference
//!    semantics).
//!
//! Boolean quantifier scopes (the `semi-join ∃` / `anti-join ¬∃` roles of
//! `EXISTS`-shaped subformulas) additionally run the **decorrelation
//! pass** ([`plan_scope_boolean`]): when every correlated filter is a pure
//! equi-join between a scope-local expression and an outer expression
//! (plus optional outer-only prelude filters), the scope is planned as a
//! *set-level* semi/anti-join — a build pipeline (this module's usual
//! plan, with the correlated filters masked out and the outer environment
//! hidden) plus a [`Decorrelation`] describing the correlated-key
//! signature. The engine then evaluates the build **once**, keys a hash
//! set on the correlated columns, and answers every outer row with an
//! O(1) probe instead of re-entering the enumeration per row.
//!
//! ## Observational equivalence
//!
//! Pushdown and probing only ever *skip* environments that a leaf filter
//! would reject anyway, and every pushed/probing decision is validated at
//! plan time: an expression whose attribute references do not all resolve
//! against the schemas they will bind to is left at the leaf, so
//! data-independent errors (`UnknownAttribute` is the only one scalar
//! evaluation can raise eagerly — arithmetic is total and null-poisoning)
//! surface exactly when the reference nested loop would surface them.
//! Join *reordering* changes enumeration order, so `Auto` results are
//! bag-identical — not order-identical — to the reference; the force modes
//! preserve order exactly.

use crate::analysis::{formula_free_vars, Parts};
use crate::logical::{const_cmp, eq_sides, extract_equalities, other_side, pred_attr_refs, EqEdge};
use crate::scope::{
    NoOuter, OuterScope, PlanError, ScopeSpec, SourceSpec, ABSTRACT_EST, DEFAULT_ROWS,
    EXTERNAL_EST, NESTED_EST,
};
use arc_core::ast::{CmpOp, Predicate, Quant, Scalar};
use arc_core::value::Value;
use std::collections::HashSet;

/// How a scope is planned. Maps one-to-one onto the engine's
/// `EvalStrategy`: the env-var force overrides pin both the join order
/// (declaration order) and the access choice, so the whole test suite can
/// be replayed under either fixed strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanMode {
    /// Cost-based: greedy join ordering by estimated cardinality,
    /// per-operator hash/scan choice, predicate pushdown.
    #[default]
    Auto,
    /// Declaration order, scans only, all filters at the leaf — the
    /// paper-faithful reference (§2.3).
    ForceNestedLoop,
    /// Declaration order, hash probes wherever an equality edge allows,
    /// all filters at the leaf — PR 1's global hash-join strategy.
    ForceHashJoin,
}

/// A reference to one orientation of an equality filter: the probe/input
/// expression is the *other* side of `filters[filter]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqInput {
    /// Index into the scope's filter list.
    pub filter: usize,
    /// Whether the bound attribute is the comparison's left operand.
    pub attr_on_left: bool,
}

/// One hash-probe key column: relation column `col` is matched against the
/// expression behind `eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeKey {
    /// Column index into the relation's schema.
    pub col: usize,
    /// Where the probe expression lives.
    pub eq: EqInput,
}

/// How one step obtains its tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// Enumerate the source in storage order.
    Scan,
    /// Build/reuse a hash index on `keys` and probe it with expressions
    /// over earlier bindings (relation sources only).
    HashProbe {
        /// The key columns and their probe expressions.
        keys: Vec<ProbeKey>,
    },
    /// Solve an external relation through access pattern `pattern`, with
    /// one input expression per bound position.
    External {
        /// Index into the external's pattern list.
        pattern: usize,
        /// Input expressions, parallel to the pattern's bound positions.
        inputs: Vec<EqInput>,
    },
    /// Check an abstract relation in context: one input expression per
    /// head attribute.
    Abstract {
        /// Input expressions, parallel to the head attributes.
        inputs: Vec<EqInput>,
    },
    /// Evaluate a nested (lateral) collection per outer environment.
    Nested,
    /// Binary-search an ordered secondary index over `cols` for a bound
    /// prefix of constant predicates (relation sources only): constant
    /// equalities bind every column but the last, and the last column is
    /// closed by one or two constant range bounds. Predicates that do not
    /// fit the prefix (a second range column, `!=`, `IS NULL`) are
    /// *demoted* — they stay ordinary step filters over the streamed
    /// index matches.
    IndexRange {
        /// Index column order: equality-bound columns first (in filter
        /// order), then the single range-bound column.
        cols: Vec<usize>,
        /// Indices into the scope's filter list consumed by the bound —
        /// one equality per prefix column, then the range column's lower
        /// and/or upper bound filters last.
        filters: Vec<usize>,
    },
}

impl Access {
    /// Short operator name for `EXPLAIN`.
    pub fn name(&self) -> &'static str {
        match self {
            Access::Scan => "scan",
            Access::HashProbe { .. } => "hash-probe",
            Access::External { .. } => "external",
            Access::Abstract { .. } => "abstract-check",
            Access::Nested => "lateral",
            Access::IndexRange { .. } => "index-range",
        }
    }
}

/// One planned step: bind `bindings[binding]` via `access`, then apply the
/// pushed-down `filters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Index into [`ScopeSpec::bindings`].
    pub binding: usize,
    /// The chosen access path.
    pub access: Access,
    /// Filter indices evaluated as soon as this step's variable binds.
    pub filters: Vec<usize>,
    /// Estimated rows this step contributes per upstream environment
    /// (display only; `u64` bits of an `f64` would be overkill here, and
    /// the estimate is already heuristic).
    pub estimated_rows: u64,
}

/// One correlated-key component of a decorrelated boolean scope: the
/// scope-local side of equality filter `filter` is evaluated per build
/// environment to form the key, the outer side per outer row to probe it
/// (orientation via [`eq_sides`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelatedKey {
    /// Index into the scope's filter list.
    pub filter: usize,
    /// Whether the scope-local expression is the comparison's left operand.
    pub local_on_left: bool,
}

/// Set-level decorrelation of a boolean quantifier scope (`∃` / `¬∃`):
/// attached to the scope's [`ScopePlan`] when the correlation with the
/// outer environment is a pure equi-join. The plan's steps then describe
/// the **build** pipeline — planned with the correlated filters masked
/// out and the outer environment hidden, so the build is provably
/// outer-row independent and can be evaluated once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decorrelation {
    /// The correlated-key signature: which equality filters tie the scope
    /// body to the outer environment. May be empty when the only
    /// correlation is outer-only prelude filters (or none at all) — the
    /// build then collapses to a cached non-emptiness verdict.
    pub keys: Vec<CorrelatedKey>,
    /// Outer-only filters evaluated per outer row *before* probing (the
    /// filters the nested path would have checked as its prelude).
    pub probe_filters: Vec<usize>,
    /// Estimated distinct correlated keys in the build (semi-join
    /// selectivity: distinct counts of the key columns, capped by the
    /// build's estimated cardinality). Display only, like
    /// [`Step::estimated_rows`].
    pub est_keys: u64,
}

/// The physical plan of one quantifier scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopePlan {
    /// Steps in execution order.
    pub steps: Vec<Step>,
    /// Filters over outer variables (or constants) only, evaluated once
    /// before the first step.
    pub prelude_filters: Vec<usize>,
    /// Filters evaluated only when every binding is bound (non-pushable:
    /// unresolved variables/attributes, or force modes).
    pub leaf_filters: Vec<usize>,
    /// Present when this plan is the build side of a set-level semi/anti
    /// join (boolean scopes planned by [`plan_scope_boolean`] whose
    /// correlation is pure equi-join). `None` for every emitting scope and
    /// for boolean scopes that fell back to the nested path.
    pub decorrelation: Option<Decorrelation>,
}

/// Minimum estimated cardinality of an outer scan before partitioned
/// (parallel) execution pays for its morsel bookkeeping. Small scans run
/// sequentially even under `ARC_THREADS > 1`.
pub const PARALLEL_MIN_ROWS: u64 = 16;

/// Maximum estimated fraction of a relation an index-range bound prefix
/// may select before the planner keeps the (vectorized) full scan: an
/// ordered-index walk only beats a scan when the bound is selective, and
/// without `ANALYZE` statistics no bound can prove itself selective —
/// the default inequality guess (one third) sits above this threshold by
/// design, so un-analyzed catalogs plan exactly as before.
pub const INDEX_MAX_FRACTION: f64 = 0.25;

impl ScopePlan {
    /// The step order as binding indices (convenience for callers that
    /// reorder their own side tables).
    pub fn binding_order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.binding).collect()
    }

    /// The partition axis for parallel execution: the step whose scan the
    /// executor may split into morsels, chosen by estimated cardinality.
    /// Only the *first* step qualifies (later steps enumerate per
    /// upstream environment, so splitting them would duplicate upstream
    /// work), and only when it enumerates a relation without keying off
    /// bound variables — a plain scan or an index-range scan (whose
    /// qualifying row ids partition like a scan's selection vector)
    /// estimated at [`PARALLEL_MIN_ROWS`] rows or more. Probes, external
    /// accesses, abstract checks, and laterals are not partitionable.
    pub fn partition_axis(&self) -> Option<usize> {
        let first = self.steps.first()?;
        (matches!(first.access, Access::Scan | Access::IndexRange { .. })
            && first.estimated_rows >= PARALLEL_MIN_ROWS)
            .then_some(0)
    }
}

/// A placement candidate found during one ordering round.
struct Candidate {
    binding: usize,
    access: Access,
    cost: f64,
}

/// The `plan.runs` registry counter: actual planning runs since process
/// start (cache hits do not plan, so the delta across a workload measures
/// cache effectiveness — the engine's plan-cache tests assert correlated
/// scopes plan O(1) times, not once per outer row). Consolidated into the
/// `arc-trace` registry so `arc_trace::snapshot()` diffs cover it.
fn runs_counter() -> arc_trace::Counter {
    static C: std::sync::OnceLock<arc_trace::Counter> = std::sync::OnceLock::new();
    *C.get_or_init(|| arc_trace::counter("plan.runs"))
}

/// Total [`plan_scope`] invocations so far in this process (the
/// `plan.runs` registry counter).
pub fn planner_runs() -> u64 {
    runs_counter().get()
}

/// Plan one quantifier scope. See the module docs for the pass pipeline.
pub fn plan_scope(spec: &ScopeSpec<'_>, mode: PlanMode) -> Result<ScopePlan, PlanError> {
    runs_counter().inc();
    plan_scope_impl(spec, mode, &[])
}

/// Plan a *boolean* quantifier scope (`∃` / `¬∃` truth, no emission):
/// under [`PlanMode::Auto`] this first runs the decorrelation pass, and
/// when the scope's correlation with the outer environment is a pure
/// equi-join the returned plan describes the build pipeline and carries a
/// [`Decorrelation`] (see [`ScopePlan::decorrelation`]). Everything else —
/// force modes, non-equi correlation, placements that need the outer
/// environment — falls back to the ordinary [`plan_scope`] result.
pub fn plan_scope_boolean(spec: &ScopeSpec<'_>, mode: PlanMode) -> Result<ScopePlan, PlanError> {
    runs_counter().inc();
    if mode == PlanMode::Auto {
        if let Some(plan) = try_decorrelate(spec) {
            return Ok(plan);
        }
    }
    plan_scope_impl(spec, mode, &[])
}

/// Structural eligibility of a boolean quantifier scope for set-level
/// decorrelation: no grouping, no outer-join annotation, no aggregates,
/// and no boolean subformula that references an outer variable (that
/// would be correlation the equi-join key cannot capture). The
/// filter-level classification — which correlated filters are clean
/// equi-joins — happens inside [`plan_scope_boolean`]; this predicate is
/// the cheap shape check both the engine and `EXPLAIN` run first.
/// `parts` is the caller's already-computed *boolean* partition of
/// `q.body` (head `"\u{0}"`) — both callers have it in hand, and this
/// check runs per outer row on the engine's probe path, so re-deriving
/// it here would put a full body walk on the hot loop.
pub fn decorrelatable_shape(q: &Quant, parts: &Parts<'_>, outer: &dyn OuterScope) -> bool {
    if q.grouping.is_some() || q.join.as_ref().is_some_and(|t| t.has_outer()) {
        return false;
    }
    if !parts.agg_tests.is_empty() || !parts.post_bool.is_empty() {
        return false;
    }
    parts.pre_bool.iter().all(|b| {
        formula_free_vars(b)
            .iter()
            .all(|v| q.bindings.iter().any(|bi| &bi.var == v) || outer.attrs(v).is_none())
    })
}

/// How one side of a filter relates to the scope.
#[derive(PartialEq, Eq, Clone, Copy)]
enum SideKind {
    /// No attribute references (constant expression).
    Neutral,
    /// All references are scope-local and resolve against the binding
    /// schemas.
    Local,
    /// At least one reference, all to visible outer variables, all
    /// resolving against the outer schemas.
    Outer,
    /// Mixed, unresolvable, unknown-variable, or aggregate-bearing: the
    /// decorrelation pass must bail.
    Opaque,
}

/// The decorrelation pass: classify every filter as build-side
/// (outer-free), probe-prelude (outer-only), or a correlated equi-join
/// key — then plan the build with the correlated filters masked and the
/// outer environment hidden. `None` means "not decorrelatable, use the
/// nested path".
fn try_decorrelate(spec: &ScopeSpec<'_>) -> Option<ScopePlan> {
    let locals: HashSet<&str> = spec.bindings.iter().map(|b| b.var).collect();
    if locals.len() != spec.bindings.len() {
        // Duplicate range-variable names: plan-time resolution could
        // disagree with the runtime's innermost-first lookup.
        return None;
    }
    let local_resolves = |r: &arc_core::ast::AttrRef| -> bool {
        spec.bindings
            .iter()
            .find(|b| b.var == r.var)
            .is_some_and(|b| b.source.schema().contains(&r.attr))
    };
    let outer_resolves = |r: &arc_core::ast::AttrRef| -> bool {
        spec.outer
            .attrs(&r.var)
            .is_some_and(|attrs| attrs.contains(&r.attr))
    };
    let side_kind = |s: &Scalar| -> SideKind {
        if s.has_aggregate() {
            return SideKind::Opaque;
        }
        let refs = s.attr_refs();
        if refs.is_empty() {
            return SideKind::Neutral;
        }
        if refs.iter().all(|r| locals.contains(r.var.as_str())) {
            return if refs.iter().all(|r| local_resolves(r)) {
                SideKind::Local
            } else {
                SideKind::Opaque
            };
        }
        if refs
            .iter()
            .all(|r| !locals.contains(r.var.as_str()) && outer_resolves(r))
        {
            return SideKind::Outer;
        }
        SideKind::Opaque
    };

    let mut keys: Vec<CorrelatedKey> = Vec::new();
    let mut probe_filters: Vec<usize> = Vec::new();
    for (i, p) in spec.filters.iter().enumerate() {
        // Build-side filters reference no visible outer variable at all
        // (locals, constants, or unknown names — the latter error at the
        // build's leaf exactly as they would at the nested path's leaf).
        let touches_outer = pred_attr_refs(p)
            .iter()
            .any(|r| !locals.contains(r.var.as_str()) && spec.outer.attrs(&r.var).is_some());
        if !touches_outer {
            continue;
        }
        match p {
            Predicate::Cmp {
                left,
                op: CmpOp::Eq,
                right,
            } => match (side_kind(left), side_kind(right)) {
                (SideKind::Local, SideKind::Outer) => keys.push(CorrelatedKey {
                    filter: i,
                    local_on_left: true,
                }),
                (SideKind::Outer, SideKind::Local) => keys.push(CorrelatedKey {
                    filter: i,
                    local_on_left: false,
                }),
                (SideKind::Outer, SideKind::Outer | SideKind::Neutral)
                | (SideKind::Neutral, SideKind::Outer) => probe_filters.push(i),
                _ => return None,
            },
            // Any other correlated predicate shape is probe-prelude when
            // it is outer-only and fully resolvable, and a bailout
            // otherwise (non-equi correlation touching locals).
            Predicate::Cmp { left, right, .. } => match (side_kind(left), side_kind(right)) {
                (SideKind::Outer | SideKind::Neutral, SideKind::Outer | SideKind::Neutral) => {
                    probe_filters.push(i)
                }
                _ => return None,
            },
            Predicate::IsNull { expr, .. } => match side_kind(expr) {
                SideKind::Outer => probe_filters.push(i),
                _ => return None,
            },
        }
    }

    // Plan the build with the correlated filters masked out and NO outer
    // environment: a placement that would need an outer variable (lateral
    // free vars, external/abstract inputs through outer expressions)
    // fails here, and the scope falls back to the nested path — which is
    // what keeps the build provably outer-row independent.
    let mut masked: Vec<usize> = keys.iter().map(|k| k.filter).collect();
    masked.extend(probe_filters.iter().copied());
    let build_spec = ScopeSpec {
        bindings: spec.bindings.clone(),
        filters: spec.filters,
        outer: &NoOuter,
        estimator: spec.estimator,
        indexes: spec.indexes,
    };
    let mut plan = plan_scope_impl(&build_spec, PlanMode::Auto, &masked).ok()?;

    // Semi-join selectivity estimate: distinct count of the correlated
    // key (per-binding column sets through the statistics estimator, MCV
    // capped there), bounded by the build's estimated cardinality.
    let build_rows = plan
        .steps
        .iter()
        .fold(1u64, |acc, s| acc.saturating_mul(s.estimated_rows.max(1)));
    let mut est_keys = build_rows.max(1);
    if let Some(est) = spec.estimator {
        let mut per_binding: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut all_bare = true;
        for k in &keys {
            let (local, _) = eq_sides(spec.filters[k.filter], k.local_on_left);
            let Scalar::Attr(a) = local else {
                all_bare = false;
                break;
            };
            let Some(bi) = spec.bindings.iter().position(|b| b.var == a.var) else {
                all_bare = false;
                break;
            };
            let Some(col) = spec.bindings[bi]
                .source
                .schema()
                .iter()
                .position(|s| s == &a.attr)
            else {
                all_bare = false;
                break;
            };
            match per_binding.iter_mut().find(|(b, _)| *b == bi) {
                Some((_, cols)) => cols.push(col),
                None => per_binding.push((bi, vec![col])),
            }
        }
        if all_bare && !keys.is_empty() {
            let mut product = 1u64;
            let mut known = true;
            for (bi, cols) in &per_binding {
                match est.distinct(*bi, cols) {
                    Some(d) => product = product.saturating_mul(d.max(1) as u64),
                    None => known = false,
                }
            }
            if known {
                est_keys = product.min(build_rows.max(1));
            }
        }
    }

    plan.decorrelation = Some(Decorrelation {
        keys,
        probe_filters,
        est_keys,
    });
    Some(plan)
}

/// The shared planning pipeline. `masked` filters are invisible to every
/// pass — they can neither drive probe keys / external inputs nor be
/// scheduled anywhere — because the caller enforces them elsewhere (the
/// decorrelated probe).
fn plan_scope_impl(
    spec: &ScopeSpec<'_>,
    mode: PlanMode,
    masked: &[usize],
) -> Result<ScopePlan, PlanError> {
    let edges: Vec<EqEdge> = extract_equalities(spec.filters)
        .into_iter()
        .filter(|e| !masked.contains(&e.filter))
        .collect();
    let locals: HashSet<&str> = spec.bindings.iter().map(|b| b.var).collect();

    let mut remaining: Vec<usize> = (0..spec.bindings.len()).collect();
    let mut placed: Vec<usize> = Vec::new(); // binding indices, in step order
    let mut steps: Vec<Step> = Vec::new();

    while !remaining.is_empty() {
        let candidate = {
            // A variable is usable by a probe/input/lateral expression once
            // its binding is placed; a scope-local name that is not yet
            // placed must NOT fall back to a same-named outer variable (the
            // local shadows it).
            let usable = |var: &str| -> bool {
                placed.iter().any(|&i| spec.bindings[i].var == var)
                    || (!locals.contains(var) && spec.outer.attrs(var).is_some())
            };
            // Plan-time attribute resolution, mirroring runtime lookup
            // order: placed bindings shadow the outer environment,
            // innermost first.
            let attr_resolves = |r: &arc_core::ast::AttrRef| -> bool {
                for &i in placed.iter().rev() {
                    if spec.bindings[i].var == r.var {
                        return spec.bindings[i].source.schema().contains(&r.attr);
                    }
                }
                spec.outer
                    .attrs(&r.var)
                    .is_some_and(|attrs| attrs.contains(&r.attr))
            };
            // Placement resolvability for external/abstract inputs: the
            // expressions are evaluated eagerly at enumeration time under
            // *every* mode, so only variable reachability is required
            // (attribute errors surface identically either way).
            let input_resolvable = |e: &arc_core::ast::Scalar| -> bool {
                e.attr_refs().iter().all(|r| usable(&r.var))
            };
            // One resolvable input expression per required attribute of
            // `var` (the shared determination rule for external access
            // patterns and abstract relations), or `None` when any
            // attribute is undetermined.
            let determined_inputs = |var: &str, attrs: &mut dyn Iterator<Item = &String>| {
                attrs
                    .map(|attr| {
                        edges
                            .iter()
                            .find(|e| {
                                e.var == var
                                    && &e.attr == attr
                                    && input_resolvable(other_side(
                                        spec.filters[e.filter],
                                        e.attr_on_left,
                                    ))
                            })
                            .map(|e| EqInput {
                                filter: e.filter,
                                attr_on_left: e.attr_on_left,
                            })
                    })
                    .collect::<Option<Vec<EqInput>>>()
            };

            let mut best: Option<Candidate> = None;
            for &bi in &remaining {
                let b = &spec.bindings[bi];
                let candidate = match &b.source {
                    SourceSpec::Relation { schema, rows } => {
                        let keys =
                            probe_keys(spec, &edges, bi, b.var, schema, &usable, &attr_resolves);
                        let rows_f = rows.unwrap_or(DEFAULT_ROWS) as f64;
                        let (access, cost) = if keys.is_empty() || mode == PlanMode::ForceNestedLoop
                        {
                            // Statistics-scaled scan: constant comparisons
                            // on this binding shrink the estimate (MCV /
                            // histogram selectivity) when stats exist —
                            // without statistics the product is 1 and the
                            // cost is the plain row count, as ever.
                            let sel = const_selectivity(spec, bi, b.var, schema, masked);
                            // Under Auto, a selective constant bound prefix
                            // upgrades the scan to an index-range walk over
                            // the same rows (the estimate is unchanged —
                            // the access path is, not the output).
                            let access = if mode == PlanMode::Auto {
                                index_candidate(spec, bi, b.var, schema, masked)
                                    .unwrap_or(Access::Scan)
                            } else {
                                Access::Scan
                            };
                            (access, rows_f * sel)
                        } else {
                            // Probe cost: constant-keyed columns use their
                            // measured equality selectivity (MCV-aware);
                            // the remaining key columns divide by the
                            // distinct-key estimate; residual constant
                            // filters (not consumed by the probe) scale
                            // the result like they scale a scan.
                            let mut var_cols: Vec<usize> = Vec::new();
                            let mut probed: Vec<usize> = masked.to_vec();
                            let mut cost = rows_f;
                            for k in &keys {
                                probed.push(k.eq.filter);
                                let probe =
                                    other_side(spec.filters[k.eq.filter], k.eq.attr_on_left);
                                let known = match (probe, spec.estimator) {
                                    (Scalar::Const(v), Some(e)) => {
                                        e.selectivity(bi, k.col, arc_core::ast::CmpOp::Eq, v)
                                    }
                                    _ => None,
                                };
                                match known {
                                    Some(s) => cost *= s.clamp(0.0, 1.0),
                                    None => var_cols.push(k.col),
                                }
                            }
                            if !var_cols.is_empty() {
                                let distinct = spec
                                    .estimator
                                    .and_then(|e| e.distinct(bi, &var_cols))
                                    .unwrap_or_else(|| rows.unwrap_or(DEFAULT_ROWS).max(1));
                                cost /= distinct.max(1) as f64;
                            }
                            cost *= const_selectivity(spec, bi, b.var, schema, &probed);
                            // When every probe key is a *constant* (no
                            // dependence on other bindings), an ordered
                            // index can bind those equalities as its
                            // prefix AND close it with a range predicate
                            // a hash bucket cannot capture — prefer it
                            // when the bound prices selective enough.
                            let all_const = mode == PlanMode::Auto
                                && keys.iter().all(|k| {
                                    matches!(
                                        other_side(spec.filters[k.eq.filter], k.eq.attr_on_left),
                                        Scalar::Const(_)
                                    )
                                });
                            let access = if all_const {
                                index_candidate(spec, bi, b.var, schema, masked)
                                    .unwrap_or(Access::HashProbe { keys })
                            } else {
                                Access::HashProbe { keys }
                            };
                            (access, cost.max(1.0))
                        };
                        Some(Candidate {
                            binding: bi,
                            access,
                            cost,
                        })
                    }
                    SourceSpec::External { schema, patterns } => patterns
                        .iter()
                        .enumerate()
                        .find_map(|(pi, bound)| {
                            let mut attrs = bound.iter().map(|&pos| &schema[pos]);
                            determined_inputs(b.var, &mut attrs).map(|inputs| Access::External {
                                pattern: pi,
                                inputs,
                            })
                        })
                        .map(|access| Candidate {
                            binding: bi,
                            access,
                            cost: EXTERNAL_EST,
                        }),
                    SourceSpec::Abstract { attrs } => determined_inputs(b.var, &mut attrs.iter())
                        .map(|inputs| Candidate {
                            binding: bi,
                            access: Access::Abstract { inputs },
                            cost: ABSTRACT_EST,
                        }),
                    SourceSpec::Nested { free, .. } => {
                        free.iter().all(|v| usable(v)).then_some(Candidate {
                            binding: bi,
                            access: Access::Nested,
                            cost: NESTED_EST,
                        })
                    }
                };
                let Some(c) = candidate else { continue };
                match mode {
                    // Declaration order: the first placeable binding wins.
                    PlanMode::ForceNestedLoop | PlanMode::ForceHashJoin => {
                        best = Some(c);
                        break;
                    }
                    // Greedy: strictly smaller estimated cardinality wins;
                    // ties keep declaration order (remaining is ordered).
                    PlanMode::Auto => {
                        if best.as_ref().is_none_or(|b| c.cost < b.cost) {
                            best = Some(c);
                        }
                    }
                }
            }
            best
        };

        let Some(c) = candidate else {
            return Err(PlanError::Unplaceable {
                binding: remaining[0],
            });
        };
        remaining.retain(|&i| i != c.binding);
        placed.push(c.binding);
        steps.push(Step {
            binding: c.binding,
            access: c.access,
            filters: Vec::new(),
            estimated_rows: c.cost.round().max(1.0) as u64,
        });
    }

    let mut plan = ScopePlan {
        steps,
        prelude_filters: Vec::new(),
        leaf_filters: Vec::new(),
        decorrelation: None,
    };
    assign_filters(spec, &locals, mode, masked, &mut plan);
    Ok(plan)
}

/// Hash-probe key selection for one relation binding: every equality edge
/// `var.attr = expr` whose probe expression is computable from bindings
/// placed *before* it (or unshadowed outer variables), does not mention
/// `var` itself, and resolves attribute-by-attribute at plan time.
#[allow(clippy::too_many_arguments)]
fn probe_keys(
    spec: &ScopeSpec<'_>,
    edges: &[EqEdge],
    _binding: usize,
    var: &str,
    schema: &[String],
    usable: &dyn Fn(&str) -> bool,
    attr_resolves: &dyn Fn(&arc_core::ast::AttrRef) -> bool,
) -> Vec<ProbeKey> {
    let mut keys = Vec::new();
    for e in edges {
        if e.var != var {
            continue;
        }
        let Some(col) = schema.iter().position(|a| a == &e.attr) else {
            continue;
        };
        let probe = other_side(spec.filters[e.filter], e.attr_on_left);
        // Probing must be a pure per-tuple evaluation: no aggregates, no
        // self-references, and every attribute reference must be both
        // reachable and resolvable at plan time (see module docs on error
        // equivalence).
        if probe.has_aggregate() {
            continue;
        }
        let refs = probe.attr_refs();
        if refs.iter().any(|r| r.var == var) {
            continue;
        }
        if !refs.iter().all(|r| usable(&r.var) && attr_resolves(r)) {
            continue;
        }
        keys.push(ProbeKey {
            col,
            eq: EqInput {
                filter: e.filter,
                attr_on_left: e.attr_on_left,
            },
        });
    }
    keys
}

/// Ordered-index access selection for one relation binding: gather the
/// constant predicates ([`const_cmp`]-shaped — the only shape the index
/// bound can enforce), form the bound prefix (every constant-equality
/// column, then ONE range-bound column closing it; a lower and an upper
/// bound on the same column combine into an interval), and price the
/// prefix with the statistics estimator. Returns `None` — keeping the
/// caller's scan/probe — when indexes are disabled for the scope, no
/// range bound exists, the range column's selectivity is unknown (no
/// `ANALYZE` statistics), or the priced prefix is not selective enough
/// ([`INDEX_MAX_FRACTION`]).
///
/// Everything this function does *not* consume — a second range column,
/// duplicate equalities, `!=`, `IS NULL` — is demoted: it stays in the
/// pushdown pass's hands and runs as an ordinary filter over the
/// streamed index matches.
fn index_candidate(
    spec: &ScopeSpec<'_>,
    binding: usize,
    var: &str,
    schema: &[String],
    masked: &[usize],
) -> Option<Access> {
    if !spec.indexes {
        return None;
    }
    let est = spec.estimator?;
    // First constant bound per column and direction, in filter order.
    let mut eq: Vec<(usize, usize, &Value)> = Vec::new(); // (col, filter, const)
    let mut lo: Vec<(usize, usize, CmpOp, &Value)> = Vec::new();
    let mut hi: Vec<(usize, usize, CmpOp, &Value)> = Vec::new();
    for (i, p) in spec.filters.iter().enumerate() {
        if masked.contains(&i) {
            continue;
        }
        let Some((col, op, v)) = const_cmp(p, var, schema) else {
            continue;
        };
        match op {
            CmpOp::Eq => {
                if !eq.iter().any(|&(c, ..)| c == col) {
                    eq.push((col, i, v));
                }
            }
            CmpOp::Gt | CmpOp::Ge => {
                if !lo.iter().any(|&(c, ..)| c == col) {
                    lo.push((col, i, op, v));
                }
            }
            CmpOp::Lt | CmpOp::Le => {
                if !hi.iter().any(|&(c, ..)| c == col) {
                    hi.push((col, i, op, v));
                }
            }
            CmpOp::Ne => {}
        }
    }
    // The range column closing the prefix: the most selective
    // statistics-priced interval among the range-bound columns (an
    // equality on the same column is already tighter — skip those).
    let mut range_cols: Vec<usize> = Vec::new();
    for &(c, ..) in lo.iter() {
        if !range_cols.contains(&c) {
            range_cols.push(c);
        }
    }
    for &(c, ..) in hi.iter() {
        if !range_cols.contains(&c) {
            range_cols.push(c);
        }
    }
    let mut best: Option<(usize, Vec<usize>, f64)> = None; // (col, filters, fraction)
    for col in range_cols {
        if eq.iter().any(|&(c, ..)| c == col) {
            continue;
        }
        let l = lo.iter().find(|&&(c, ..)| c == col);
        let h = hi.iter().find(|&&(c, ..)| c == col);
        let Some(frac) = est.range_selectivity(
            binding,
            col,
            l.map(|&(_, _, op, v)| (op, v)),
            h.map(|&(_, _, op, v)| (op, v)),
        ) else {
            continue;
        };
        if best.as_ref().is_none_or(|b| frac < b.2) {
            let mut fs: Vec<usize> = Vec::new();
            fs.extend(l.map(|&(_, f, ..)| f));
            fs.extend(h.map(|&(_, f, ..)| f));
            best = Some((col, fs, frac));
        }
    }
    let (range_col, range_filters, range_frac) = best?;
    // Price the whole bound prefix: known equality selectivities shrink
    // it further; unknown ones contribute nothing (a bound cannot claim
    // selectivity the statistics cannot back).
    let mut sel = range_frac;
    for &(col, _, v) in &eq {
        if let Some(s) = est.selectivity(binding, col, CmpOp::Eq, v) {
            sel *= s.clamp(0.0, 1.0);
        }
    }
    if sel.is_nan() || sel > INDEX_MAX_FRACTION {
        return None;
    }
    let mut cols: Vec<usize> = eq.iter().map(|&(c, ..)| c).collect();
    let mut filters: Vec<usize> = eq.iter().map(|&(_, f, _)| f).collect();
    cols.push(range_col);
    filters.extend(range_filters);
    Some(Access::IndexRange { cols, filters })
}

/// Combined selectivity of the scope's constant comparisons against
/// binding `binding` (`var.attr op const`, either orientation, plus
/// `var.attr IS [NOT] NULL`), asked of the statistics estimator. Filters
/// listed in `exclude` (already consumed as probe keys) are skipped, as
/// is any filter the estimator has no answer for — with no statistics the
/// product is exactly 1 and the caller's estimate is unchanged.
fn const_selectivity(
    spec: &ScopeSpec<'_>,
    binding: usize,
    var: &str,
    schema: &[String],
    exclude: &[usize],
) -> f64 {
    let Some(est) = spec.estimator else {
        return 1.0;
    };
    let mut sel = 1.0f64;
    for (i, p) in spec.filters.iter().enumerate() {
        if exclude.contains(&i) {
            continue;
        }
        match p {
            Predicate::Cmp { .. } => {
                let Some((col, op, value)) = const_cmp(p, var, schema) else {
                    continue;
                };
                if let Some(s) = est.selectivity(binding, col, op, value) {
                    sel *= s.clamp(0.0, 1.0);
                }
            }
            Predicate::IsNull { expr, negated } => {
                let Scalar::Attr(a) = expr else { continue };
                if a.var != var {
                    continue;
                }
                let Some(col) = schema.iter().position(|s| s == &a.attr) else {
                    continue;
                };
                if let Some(f) = est.null_fraction(binding, col) {
                    let f = f.clamp(0.0, 1.0);
                    sel *= if *negated { 1.0 - f } else { f };
                }
            }
        }
    }
    sel
}

/// The predicate-pushdown pass: schedule each filter at the earliest point
/// where all its variables are bound — before the first step for
/// outer-only filters, after step *i* when the latest local variable binds
/// at step *i*, and at the leaf when a variable or attribute cannot be
/// resolved at plan time (preserving the reference's lazy error surfacing).
/// The force modes keep everything at the leaf.
fn assign_filters(
    spec: &ScopeSpec<'_>,
    locals: &HashSet<&str>,
    mode: PlanMode,
    masked: &[usize],
    plan: &mut ScopePlan,
) {
    if mode != PlanMode::Auto {
        plan.leaf_filters = (0..spec.filters.len()).collect();
        return;
    }
    /// Where one filter ends up.
    enum Slot {
        Prelude,
        Step(usize),
        Leaf,
    }
    let step_of = |var: &str| -> Option<usize> {
        plan.steps
            .iter()
            .position(|s| spec.bindings[s.binding].var == var)
    };
    let final_attr_resolves = |r: &arc_core::ast::AttrRef| -> bool {
        // Locals shadow the outer scope once placed — and every local is
        // placed by now.
        if locals.contains(r.var.as_str()) {
            for s in plan.steps.iter().rev() {
                let b = &spec.bindings[s.binding];
                if b.var == r.var {
                    return b.source.schema().contains(&r.attr);
                }
            }
            return false;
        }
        spec.outer
            .attrs(&r.var)
            .is_some_and(|attrs| attrs.contains(&r.attr))
    };
    let slot_of = |p: &arc_core::ast::Predicate| -> Slot {
        let mut level: Option<usize> = None; // None = prelude
        for r in pred_attr_refs(p) {
            let var_level = if locals.contains(r.var.as_str()) {
                match step_of(&r.var) {
                    Some(s) => Some(s),
                    None => return Slot::Leaf, // unreachable: locals are placed
                }
            } else if spec.outer.attrs(&r.var).is_some() {
                None
            } else {
                // Unknown variable: only the leaf may (or may not) see it,
                // exactly like the reference.
                return Slot::Leaf;
            };
            if !final_attr_resolves(r) {
                return Slot::Leaf;
            }
            level = match (level, var_level) {
                (None, l) | (l, None) => l,
                (Some(a), Some(b)) => Some(a.max(b)),
            };
        }
        match level {
            None => Slot::Prelude,
            Some(s) => Slot::Step(s),
        }
    };
    let slots: Vec<Slot> = spec.filters.iter().map(|p| slot_of(p)).collect();
    // A filter consumed as a hash-probe key of step `s` is already fully
    // enforced by the probe (`Relation::key_for`-style keys coincide
    // exactly with `compare(..) == Equal`, and NULL/NaN probes match
    // nothing — the same equivalence the probe itself relies on), and its
    // slot is necessarily `s` (the probe side binds last there). The same
    // holds for the constant filters an index-range bound consumes: the
    // ordered-index binary search admits exactly the rows those filters
    // accept. Skip the redundant re-evaluation per matched row.
    let probed: HashSet<(usize, usize)> = plan
        .steps
        .iter()
        .enumerate()
        .flat_map(|(s, step)| match &step.access {
            Access::HashProbe { keys } => keys.iter().map(|k| (s, k.eq.filter)).collect::<Vec<_>>(),
            Access::IndexRange { filters, .. } => filters.iter().map(|&f| (s, f)).collect(),
            _ => Vec::new(),
        })
        .collect();
    for (i, slot) in slots.into_iter().enumerate() {
        if masked.contains(&i) {
            // Masked filters (decorrelated correlated keys and probe
            // preludes) are enforced by the semi-join probe, never by the
            // build pipeline.
            continue;
        }
        match slot {
            Slot::Prelude => plan.prelude_filters.push(i),
            Slot::Step(s) if probed.contains(&(s, i)) => {}
            Slot::Step(s) => plan.steps[s].filters.push(i),
            Slot::Leaf => plan.leaf_filters.push(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{BindingSpec, NoOuter, ScopeSpec, SourceSpec};
    use arc_core::ast::{Formula, Predicate};
    use arc_core::dsl::*;

    fn pred(f: Formula) -> Predicate {
        match f {
            Formula::Pred(p) => p,
            other => panic!("expected predicate, got {other:?}"),
        }
    }

    fn schema(attrs: &[&str]) -> Vec<String> {
        attrs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn auto_orders_by_cardinality_and_probes() {
        let rs = schema(&["A", "B"]);
        let ss = schema(&["B", "C"]);
        let join = pred(eq(col("r", "B"), col("s", "B")));
        let filters: Vec<&Predicate> = vec![&join];
        let spec = ScopeSpec {
            bindings: vec![
                BindingSpec {
                    var: "r",
                    source: SourceSpec::Relation {
                        schema: &rs,
                        rows: Some(1000),
                    },
                },
                BindingSpec {
                    var: "s",
                    source: SourceSpec::Relation {
                        schema: &ss,
                        rows: Some(10),
                    },
                },
            ],
            filters: &filters,
            outer: &NoOuter,
            estimator: None,
            indexes: true,
        };
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        // The small relation scans first; the big one is hash-probed.
        assert_eq!(plan.binding_order(), vec![1, 0]);
        assert!(matches!(plan.steps[1].access, Access::HashProbe { .. }));
        // The join filter is fully enforced by the probe: it appears
        // neither on a step nor at the leaf.
        assert!(plan.steps.iter().all(|s| s.filters.is_empty()));
        assert!(plan.leaf_filters.is_empty());
    }

    #[test]
    fn force_modes_keep_declaration_order_and_leaf_filters() {
        let rs = schema(&["A", "B"]);
        let ss = schema(&["B", "C"]);
        let join = pred(eq(col("r", "B"), col("s", "B")));
        let filters: Vec<&Predicate> = vec![&join];
        let spec = ScopeSpec {
            bindings: vec![
                BindingSpec {
                    var: "r",
                    source: SourceSpec::Relation {
                        schema: &rs,
                        rows: Some(1000),
                    },
                },
                BindingSpec {
                    var: "s",
                    source: SourceSpec::Relation {
                        schema: &ss,
                        rows: Some(10),
                    },
                },
            ],
            filters: &filters,
            outer: &NoOuter,
            estimator: None,
            indexes: true,
        };
        for mode in [PlanMode::ForceNestedLoop, PlanMode::ForceHashJoin] {
            let plan = plan_scope(&spec, mode).unwrap();
            assert_eq!(plan.binding_order(), vec![0, 1], "{mode:?}");
            assert_eq!(plan.leaf_filters, vec![0], "{mode:?}");
            assert!(plan.steps.iter().all(|s| s.filters.is_empty()));
        }
        let nl = plan_scope(&spec, PlanMode::ForceNestedLoop).unwrap();
        assert!(nl.steps.iter().all(|s| s.access == Access::Scan));
        let hj = plan_scope(&spec, PlanMode::ForceHashJoin).unwrap();
        assert!(matches!(hj.steps[1].access, Access::HashProbe { .. }));
    }

    #[test]
    fn unresolvable_attribute_stays_at_the_leaf() {
        // `r.NOPE` does not resolve: the filter must not be pushed down and
        // the probe key must be rejected — preserving lazy error surfacing.
        let rs = schema(&["A"]);
        let ss = schema(&["B"]);
        let join = pred(eq(col("s", "B"), col("r", "NOPE")));
        let filters: Vec<&Predicate> = vec![&join];
        let spec = ScopeSpec {
            bindings: vec![
                BindingSpec {
                    var: "r",
                    source: SourceSpec::Relation {
                        schema: &rs,
                        rows: Some(1),
                    },
                },
                BindingSpec {
                    var: "s",
                    source: SourceSpec::Relation {
                        schema: &ss,
                        rows: Some(5),
                    },
                },
            ],
            filters: &filters,
            outer: &NoOuter,
            estimator: None,
            indexes: true,
        };
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        assert_eq!(plan.leaf_filters, vec![0]);
        assert!(plan.steps.iter().all(|s| s.access == Access::Scan));
    }

    #[test]
    fn abstract_requires_all_attrs_determined() {
        let attrs = schema(&["x", "y"]);
        let rs = schema(&["A"]);
        let only_x = pred(eq(col("a", "x"), col("r", "A")));
        let filters: Vec<&Predicate> = vec![&only_x];
        let spec = ScopeSpec {
            bindings: vec![
                BindingSpec {
                    var: "a",
                    source: SourceSpec::Abstract { attrs: &attrs },
                },
                BindingSpec {
                    var: "r",
                    source: SourceSpec::Relation {
                        schema: &rs,
                        rows: Some(3),
                    },
                },
            ],
            filters: &filters,
            outer: &NoOuter,
            estimator: None,
            indexes: true,
        };
        let err = plan_scope(&spec, PlanMode::Auto).unwrap_err();
        assert_eq!(err, PlanError::Unplaceable { binding: 0 });
    }

    /// A statistics stub answering one fixed fraction per column for
    /// every comparison (`None` = that column has no statistics).
    struct StubStats {
        by_col: Vec<Option<f64>>,
    }
    impl crate::scope::DistinctEstimator for StubStats {
        fn distinct(&self, _binding: usize, _cols: &[usize]) -> Option<usize> {
            None
        }
        fn selectivity(
            &self,
            _binding: usize,
            col: usize,
            _op: CmpOp,
            _value: &Value,
        ) -> Option<f64> {
            self.by_col.get(col).copied().flatten()
        }
    }

    fn range_spec<'a>(
        rs: &'a [String],
        filters: &'a [&'a Predicate],
        estimator: Option<&'a dyn crate::scope::DistinctEstimator>,
        indexes: bool,
    ) -> ScopeSpec<'a> {
        ScopeSpec {
            bindings: vec![BindingSpec {
                var: "r",
                source: SourceSpec::Relation {
                    schema: rs,
                    rows: Some(1024),
                },
            }],
            filters,
            outer: &NoOuter,
            estimator,
            indexes,
        }
    }

    #[test]
    fn index_range_fires_on_a_selective_stats_backed_bound() {
        let rs = schema(&["A", "B"]);
        let lo = pred(gt(col("r", "A"), int(3)));
        let hi = pred(lt(col("r", "A"), int(9)));
        let filters: Vec<&Predicate> = vec![&lo, &hi];
        let est = StubStats {
            by_col: vec![Some(0.05), None],
        };
        let spec = range_spec(&rs, &filters, Some(&est), true);
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        // Both bounds close the interval over column A and are consumed
        // by the access path — nothing left to filter.
        assert_eq!(
            plan.steps[0].access,
            Access::IndexRange {
                cols: vec![0],
                filters: vec![0, 1],
            }
        );
        assert!(plan.steps[0].filters.is_empty());
        assert!(plan.leaf_filters.is_empty());
    }

    #[test]
    fn index_range_bails_without_stats_unselective_or_disabled() {
        let rs = schema(&["A", "B"]);
        let lo = pred(gt(col("r", "A"), int(3)));
        let filters: Vec<&Predicate> = vec![&lo];
        // No estimator: an un-analyzed catalog plans exactly as before.
        let spec = range_spec(&rs, &filters, None, true);
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        assert_eq!(plan.steps[0].access, Access::Scan);
        assert_eq!(plan.steps[0].filters, vec![0]);
        // Unselective bound: the vectorized full scan stays cheaper.
        let wide = StubStats {
            by_col: vec![Some(0.4), None],
        };
        let spec = range_spec(&rs, &filters, Some(&wide), true);
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        assert_eq!(plan.steps[0].access, Access::Scan);
        // `indexes: false` (the ARC_INDEX=off hatch): never a candidate.
        let tight = StubStats {
            by_col: vec![Some(0.05), None],
        };
        let spec = range_spec(&rs, &filters, Some(&tight), false);
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        assert_eq!(plan.steps[0].access, Access::Scan);
        assert_eq!(plan.steps[0].filters, vec![0]);
    }

    #[test]
    fn constant_equalities_extend_the_bound_prefix() {
        // `r.B = 7 ∧ r.A > 3`: the constant equality would normally plan
        // a hash probe, but an ordered index binds it as the prefix AND
        // closes it with the range bound — both filters consumed.
        let rs = schema(&["A", "B"]);
        let key = pred(eq(col("r", "B"), int(7)));
        let lo = pred(gt(col("r", "A"), int(3)));
        let filters: Vec<&Predicate> = vec![&key, &lo];
        let est = StubStats {
            by_col: vec![Some(0.2), Some(0.5)],
        };
        let spec = range_spec(&rs, &filters, Some(&est), true);
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        assert_eq!(
            plan.steps[0].access,
            Access::IndexRange {
                cols: vec![1, 0],
                filters: vec![0, 1],
            }
        );
        assert!(plan.steps[0].filters.is_empty());
        assert!(plan.leaf_filters.is_empty());
    }

    #[test]
    fn a_prefix_gap_demotes_trailing_predicates_to_step_filters() {
        // Only ONE range column may close the prefix: the second range
        // bound (on C) and the `!=` stay ordinary step filters over the
        // streamed index matches.
        let rs = schema(&["A", "B", "C"]);
        let lo = pred(gt(col("r", "A"), int(3)));
        let other = pred(lt(col("r", "C"), int(9)));
        let noteq = pred(ne(col("r", "B"), int(2)));
        let filters: Vec<&Predicate> = vec![&lo, &other, &noteq];
        let est = StubStats {
            by_col: vec![Some(0.05), Some(0.5), Some(0.2)],
        };
        let spec = range_spec(&rs, &filters, Some(&est), true);
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        // A prices tighter than C, so A closes the prefix…
        assert_eq!(
            plan.steps[0].access,
            Access::IndexRange {
                cols: vec![0],
                filters: vec![0],
            }
        );
        // …and the rest run as pushed-down filters, in filter order.
        assert_eq!(plan.steps[0].filters, vec![1, 2]);
        assert!(plan.leaf_filters.is_empty());
    }

    #[test]
    fn outer_only_filters_move_to_the_prelude() {
        struct Outer(Vec<String>);
        impl crate::scope::OuterScope for Outer {
            fn attrs(&self, var: &str) -> Option<&[String]> {
                (var == "o").then_some(self.0.as_slice())
            }
        }
        let outer = Outer(schema(&["A"]));
        let rs = schema(&["A"]);
        let outer_only = pred(gt(col("o", "A"), int(3)));
        let filters: Vec<&Predicate> = vec![&outer_only];
        let spec = ScopeSpec {
            bindings: vec![BindingSpec {
                var: "r",
                source: SourceSpec::Relation {
                    schema: &rs,
                    rows: Some(3),
                },
            }],
            filters: &filters,
            outer: &outer,
            estimator: None,
            indexes: true,
        };
        let plan = plan_scope(&spec, PlanMode::Auto).unwrap();
        assert_eq!(plan.prelude_filters, vec![0]);
        assert!(plan.leaf_filters.is_empty());
    }
}
