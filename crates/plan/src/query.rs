//! Whole-query logical plans: the operator tree a `Program`/`Collection`
//! lowers into, with each quantifier scope planned by
//! [`plan_scope`](crate::physical::plan_scope).
//!
//! The tree is the **pattern-level** view the paper's Relational Diagrams
//! render: projection, aggregation, quantifier scopes (join pipelines),
//! union of rules, and fixpoints for recursive definitions. The
//! [`explain`](crate::explain) module renders it as text; a diagram
//! backend can walk the same tree.

use crate::analysis::{free_vars, partition};
use crate::physical::{plan_scope, Access, PlanMode, ScopePlan};
use crate::scope::{BindingSpec, OuterScope, ScopeSpec, SourceSpec};
use arc_core::ast::*;

/// The kind of a named source, as resolved by the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// An extensional (stored) relation.
    Base,
    /// An intensional relation (definition/fixpoint result).
    Defined,
    /// An external relation with access patterns (§2.13.1).
    External,
    /// An abstract relation checked in context (§2.13.2).
    Abstract,
}

/// What a name resolves to, for planning purposes.
#[derive(Debug, Clone)]
pub struct ResolvedSource {
    /// The source's kind.
    pub kind: SourceKind,
    /// Attribute names in column order.
    pub schema: Vec<String>,
    /// Row count when known (`None` for unmaterialized sources).
    pub rows: Option<usize>,
    /// For externals: bound-position lists, one per access pattern.
    pub patterns: Vec<Vec<usize>>,
    /// `ANALYZE` statistics when the catalog has them (base relations
    /// only): `EXPLAIN` estimates become MCV/histogram-backed instead of
    /// bare row counts.
    pub stats: Option<std::sync::Arc<arc_stats::TableStats>>,
}

/// Resolves relation names to planning metadata. The engine implements
/// this over its catalog (and materialized definitions); `EXPLAIN` of a
/// bare program implements it over the program's own definitions.
pub trait SourceResolver {
    /// Resolve `name`, or `None` when unknown.
    fn resolve(&self, name: &str) -> Option<ResolvedSource>;
}

/// Why lowering failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A binding references a name the resolver does not know.
    UnknownRelation(String),
    /// A binding cannot be placed in any join order (underdetermined
    /// external/abstract inputs or unbound lateral free variables).
    Unplaceable {
        /// The range variable of the stuck binding.
        var: String,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            LowerError::Unplaceable { var } => {
                write!(f, "binding `{var}` cannot be placed in any join order")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// One rendered pipeline step of a scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepNode {
    /// The range variable bound by the step.
    pub var: String,
    /// Display name of the source (relation name, or `{…}` for laterals).
    pub source: String,
    /// Rendered access path (`scan`, `hash-probe on [r.B = s.B]`, …).
    pub access: String,
    /// Pushed-down filters, rendered.
    pub pushed: Vec<String>,
    /// Estimated rows contributed per upstream environment.
    pub est: u64,
    /// True when this step is the scope's partition axis (see
    /// [`ScopePlan::partition_axis`]): under parallel execution its scan
    /// is split into morsels. Rendered as a `partition(n)` prefix by
    /// [`crate::explain::render_with_threads`] when `n > 1`.
    pub partition: bool,
}

/// A labeled child subplan of a scope (laterals, spines, quantified
/// subformulas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildPlan {
    /// Role label (`lateral x`, `semi-join ∃`, `anti-join ¬∃`, `spine`).
    pub label: String,
    /// The child's plan.
    pub plan: PlanNode,
}

/// A node of the whole-query logical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// Head-tuple assembly for a collection.
    Project {
        /// Head relation name.
        head: String,
        /// Head attributes.
        attrs: Vec<String>,
        /// The body plan.
        input: Box<PlanNode>,
    },
    /// Union of rule branches (a disjunctive body).
    Union {
        /// One input per branch.
        inputs: Vec<PlanNode>,
    },
    /// A grouping scope: grouping keys plus per-group outputs/tests over
    /// the underlying join pipeline.
    Aggregate {
        /// Grouping-key attributes, rendered (`γ∅` when empty).
        keys: Vec<String>,
        /// Aggregating head assignments, rendered.
        assigns: Vec<String>,
        /// Per-group tests (aggregation predicates), rendered.
        tests: Vec<String>,
        /// The grouped join pipeline.
        input: Box<PlanNode>,
    },
    /// A planned quantifier scope: an ordered join pipeline.
    Scope {
        /// Stable operator id: the address of the scope's binding list in
        /// the source AST — the same identity the engine's per-query plan
        /// cache keys on, so a profile gathered while *executing* the AST
        /// joins back to the plan lowered from it (see
        /// [`crate::explain::render_analyze`]). `0` for synthesized
        /// scopes with no bindings.
        scope_id: usize,
        /// Pipeline steps in execution order.
        steps: Vec<StepNode>,
        /// Filters evaluated before the first step (outer-only), rendered.
        prelude: Vec<String>,
        /// Filters evaluated at the leaf, rendered.
        residual: Vec<String>,
        /// Non-aggregating head assignments, rendered.
        assigns: Vec<String>,
        /// Labeled child subplans.
        children: Vec<ChildPlan>,
    },
    /// A decorrelated boolean scope: a set-level semi- or anti-join whose
    /// build pipeline runs once and whose correlated-key probe answers
    /// every outer row in O(1) (see
    /// [`plan_scope_boolean`](crate::physical::plan_scope_boolean)).
    SemiJoin {
        /// Stable operator id of the underlying scope (see
        /// [`PlanNode::Scope::scope_id`]); probe-side actuals are
        /// recorded under it.
        scope_id: usize,
        /// `true` for `anti-join ¬∃`, `false` for `semi-join ∃`.
        anti: bool,
        /// The correlated equality filters forming the key, rendered.
        keys: Vec<String>,
        /// Outer-only filters checked per probe, rendered.
        prelude: Vec<String>,
        /// Estimated distinct correlated keys in the build.
        est_keys: u64,
        /// The build pipeline (a [`PlanNode::Scope`], evaluated once).
        build: Box<PlanNode>,
    },
    /// An outer-join annotation scope (`left`/`full`, §2.11): executed on
    /// the materialized path, shown unplanned.
    OuterJoin {
        /// The annotation tree, rendered.
        tree: String,
        /// All filters (ON absorption happens at run time), rendered.
        filters: Vec<String>,
        /// Non-aggregating head assignments, rendered.
        assigns: Vec<String>,
    },
    /// A recursive definition group solved by least fixed point.
    Fixpoint {
        /// The mutually recursive relation names.
        relations: Vec<String>,
        /// One plan per member definition.
        inputs: Vec<PlanNode>,
    },
    /// A whole program: definitions (in declaration order, recursive
    /// groups fused into [`PlanNode::Fixpoint`]) plus an optional query.
    Program {
        /// Definition plans.
        definitions: Vec<PlanNode>,
        /// The final query plan, when present.
        query: Option<Box<PlanNode>>,
    },
}

/// Stable lowering-time id of a quantifier scope: the address of its
/// binding list in the source AST. The engine keys its per-query plan
/// cache, its decorrelation bail-out set, and its execution profile on
/// the same address, so actuals recorded while evaluating a `Collection`
/// join back to the plan lowered from that same `Collection`.
/// Zero-binding scopes (predicate-only bodies) get id `0`: an empty
/// `Vec`'s dangling pointer is shared across all empty vectors, so it
/// cannot identify anything.
pub fn scope_identity(q: &Quant) -> usize {
    if q.bindings.is_empty() {
        0
    } else {
        q.bindings.as_ptr() as usize
    }
}

/// Lexical scope stack used while lowering (an [`OuterScope`] for
/// `plan_scope`).
#[derive(Default)]
struct ScopeStack {
    frames: Vec<(String, Vec<String>)>,
}

impl OuterScope for ScopeStack {
    fn attrs(&self, var: &str) -> Option<&[String]> {
        self.frames
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, attrs)| attrs.as_slice())
    }
}

/// Lower a collection into a logical plan under `resolver` statistics.
/// Boolean subscopes run the decorrelation pass and index-range access
/// selection is enabled (matching the engine's defaults); use
/// [`lower_collection_opts`] to disable either.
pub fn lower_collection(
    c: &Collection,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
) -> Result<PlanNode, LowerError> {
    lower_collection_opts(c, resolver, mode, true, true)
}

/// [`lower_collection`] with the optimizer passes made explicit:
/// `decorrelate = false` mirrors an engine running `ARC_DECORRELATE=off`
/// (boolean subscopes plan as nested pipelines), `indexes = false`
/// mirrors `ARC_INDEX=off` (no index-range access paths).
pub fn lower_collection_opts(
    c: &Collection,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
    decorrelate: bool,
    indexes: bool,
) -> Result<PlanNode, LowerError> {
    let mut stack = ScopeStack::default();
    lower_collection_in(c, resolver, mode, decorrelate, indexes, &mut stack)
}

/// Lower a program: definitions (recursive groups fused into fixpoint
/// nodes) plus the query. Decorrelation and index-range selection on;
/// see [`lower_program_opts`].
pub fn lower_program(
    p: &Program,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
) -> Result<PlanNode, LowerError> {
    lower_program_opts(p, resolver, mode, true, true)
}

/// [`lower_program`] with the optimizer passes made explicit (see
/// [`lower_collection_opts`]).
pub fn lower_program_opts(
    p: &Program,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
    decorrelate: bool,
    indexes: bool,
) -> Result<PlanNode, LowerError> {
    // Wrap the resolver so definition names resolve as intensional
    // relations even before materialization.
    struct WithDefs<'a> {
        base: &'a dyn SourceResolver,
        defs: &'a [Definition],
    }
    impl SourceResolver for WithDefs<'_> {
        fn resolve(&self, name: &str) -> Option<ResolvedSource> {
            if let Some(r) = self.base.resolve(name) {
                return Some(r);
            }
            self.defs
                .iter()
                .find(|d| d.name() == name)
                .map(|d| ResolvedSource {
                    kind: SourceKind::Defined,
                    schema: d.collection.head.attrs.clone(),
                    rows: None,
                    patterns: Vec::new(),
                    stats: None,
                })
        }
    }
    let resolver = WithDefs {
        base: resolver,
        defs: &p.definitions,
    };

    // Reachability over definition references → recursive groups.
    let names: Vec<&str> = p.definitions.iter().map(|d| d.name()).collect();
    let direct: Vec<Vec<usize>> = p
        .definitions
        .iter()
        .map(|d| {
            let mut sources = Vec::new();
            collect_sources(&d.collection, &mut sources);
            let mut deps: Vec<usize> = sources
                .iter()
                .filter_map(|s| names.iter().position(|n| n == s))
                .collect();
            deps.sort_unstable();
            deps.dedup();
            deps
        })
        .collect();
    let reach = |from: usize| -> Vec<bool> {
        let mut seen = vec![false; names.len()];
        let mut queue = direct[from].clone();
        while let Some(i) = queue.pop() {
            if !seen[i] {
                seen[i] = true;
                queue.extend(direct[i].iter().copied());
            }
        }
        seen
    };
    let reachable: Vec<Vec<bool>> = (0..names.len()).map(reach).collect();

    let mut emitted = vec![false; names.len()];
    let mut definitions = Vec::new();
    for i in 0..names.len() {
        if emitted[i] {
            continue;
        }
        if reachable[i][i] {
            // Recursive: fuse the whole mutually-recursive group.
            let group: Vec<usize> = (i..names.len())
                .filter(|&j| j == i || (reachable[i][j] && reachable[j][i]))
                .collect();
            let mut inputs = Vec::new();
            for &j in &group {
                emitted[j] = true;
                inputs.push(lower_collection_opts(
                    &p.definitions[j].collection,
                    &resolver,
                    mode,
                    decorrelate,
                    indexes,
                )?);
            }
            definitions.push(PlanNode::Fixpoint {
                relations: group.iter().map(|&j| names[j].to_string()).collect(),
                inputs,
            });
        } else {
            emitted[i] = true;
            definitions.push(lower_collection_opts(
                &p.definitions[i].collection,
                &resolver,
                mode,
                decorrelate,
                indexes,
            )?);
        }
    }
    let query = match &p.query {
        Some(q) => Some(Box::new(lower_collection_opts(
            q,
            &resolver,
            mode,
            decorrelate,
            indexes,
        )?)),
        None => None,
    };
    Ok(PlanNode::Program { definitions, query })
}

fn collect_sources(c: &Collection, out: &mut Vec<String>) {
    fn walk(f: &Formula, out: &mut Vec<String>) {
        match f {
            Formula::Quant(q) => {
                for b in &q.bindings {
                    match &b.source {
                        BindingSource::Named(n) => out.push(n.clone()),
                        BindingSource::Collection(c) => collect_sources(c, out),
                    }
                }
                walk(&q.body, out);
            }
            Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|s| walk(s, out)),
            Formula::Not(inner) => walk(inner, out),
            Formula::Pred(_) => {}
        }
    }
    walk(&c.body, out);
}

#[allow(clippy::too_many_arguments)]
fn lower_collection_in(
    c: &Collection,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
    decorrelate: bool,
    indexes: bool,
    stack: &mut ScopeStack,
) -> Result<PlanNode, LowerError> {
    let input = lower_branch(
        &c.body,
        &c.head,
        resolver,
        mode,
        decorrelate,
        indexes,
        stack,
    )?;
    Ok(PlanNode::Project {
        head: c.head.relation.clone(),
        attrs: c.head.attrs.clone(),
        input: Box::new(input),
    })
}

#[allow(clippy::too_many_arguments)]
fn lower_branch(
    f: &Formula,
    head: &Head,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
    decorrelate: bool,
    indexes: bool,
    stack: &mut ScopeStack,
) -> Result<PlanNode, LowerError> {
    match f {
        Formula::Or(branches) => {
            let mut inputs = Vec::with_capacity(branches.len());
            for b in branches {
                inputs.push(lower_branch(
                    b,
                    head,
                    resolver,
                    mode,
                    decorrelate,
                    indexes,
                    stack,
                )?);
            }
            Ok(PlanNode::Union { inputs })
        }
        Formula::Quant(q) => lower_quant(
            q,
            &head.relation,
            resolver,
            mode,
            decorrelate,
            indexes,
            None,
            stack,
        ),
        other => {
            // Predicate-only body: a scope with no bindings.
            let q = Quant {
                bindings: Vec::new(),
                grouping: None,
                join: None,
                body: other.clone(),
            };
            lower_quant(
                &q,
                &head.relation,
                resolver,
                mode,
                decorrelate,
                indexes,
                None,
                stack,
            )
        }
    }
}

/// Lower one quantifier scope (the workhorse). `head` is the collection
/// head name, or a non-occurring name for boolean scopes. `bool_role` is
/// `Some(negated)` when the scope is a boolean subformula (`semi-join ∃` /
/// `anti-join ¬∃`) — the only position where the decorrelation pass may
/// fire.
#[allow(clippy::too_many_arguments)]
fn lower_quant(
    q: &Quant,
    head: &str,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
    decorrelate: bool,
    indexes: bool,
    bool_role: Option<bool>,
    stack: &mut ScopeStack,
) -> Result<PlanNode, LowerError> {
    let parts = partition(&q.body, head);
    let render_assigns = |assigns: &[(&str, &Scalar)]| -> Vec<String> {
        assigns
            .iter()
            .map(|(attr, expr)| format!("{head}.{attr} = {expr}"))
            .collect()
    };

    // Outer-join annotations execute on the materialized path; show them
    // unplanned.
    let scope = if q.join.as_ref().is_some_and(|t| t.has_outer()) {
        PlanNode::OuterJoin {
            tree: q.join.as_ref().expect("checked").to_string(),
            filters: parts.filters.iter().map(|p| p.to_string()).collect(),
            assigns: render_assigns(&parts.assigns),
        }
    } else {
        // Resolve sources, then plan the scope.
        let mut resolved: Vec<Option<ResolvedSource>> = Vec::with_capacity(q.bindings.len());
        let mut frees: Vec<Vec<String>> = Vec::with_capacity(q.bindings.len());
        for b in &q.bindings {
            match &b.source {
                BindingSource::Named(n) => {
                    let r = resolver
                        .resolve(n)
                        .ok_or_else(|| LowerError::UnknownRelation(n.clone()))?;
                    resolved.push(Some(r));
                    frees.push(Vec::new());
                }
                BindingSource::Collection(c) => {
                    resolved.push(None);
                    frees.push(free_vars(c));
                }
            }
        }
        let bindings: Vec<BindingSpec<'_>> = q
            .bindings
            .iter()
            .enumerate()
            .map(|(i, b)| BindingSpec {
                var: &b.var,
                source: match (&b.source, &resolved[i]) {
                    (BindingSource::Collection(c), _) => SourceSpec::Nested {
                        attrs: &c.head.attrs,
                        free: frees[i].clone(),
                    },
                    (BindingSource::Named(_), Some(r)) => match r.kind {
                        SourceKind::Base | SourceKind::Defined => SourceSpec::Relation {
                            schema: &r.schema,
                            rows: r.rows,
                        },
                        SourceKind::External => SourceSpec::External {
                            schema: &r.schema,
                            patterns: r.patterns.iter().map(|p| p.as_slice()).collect(),
                        },
                        SourceKind::Abstract => SourceSpec::Abstract { attrs: &r.schema },
                    },
                    (BindingSource::Named(_), None) => unreachable!("resolved above"),
                },
            })
            .collect();
        // Catalog statistics, one slot per binding, make `EXPLAIN`'s
        // estimates MCV/histogram-backed wherever an ANALYZE has run.
        let estimator = crate::estimator::TableStatsEstimator::new(
            resolved
                .iter()
                .map(|r| r.as_ref().and_then(|r| r.stats.clone()))
                .collect(),
        );
        let spec = ScopeSpec {
            bindings,
            filters: &parts.filters,
            outer: stack,
            estimator: Some(&estimator),
            indexes,
        };
        // Boolean scopes run the decorrelation pass, mirroring the
        // engine's execution-time decision exactly: same shape check,
        // same planner entry point.
        let boolean = bool_role.is_some()
            && decorrelate
            && mode == PlanMode::Auto
            && crate::physical::decorrelatable_shape(q, &parts, stack);
        let plan = if boolean {
            crate::physical::plan_scope_boolean(&spec, mode)
        } else {
            plan_scope(&spec, mode)
        }
        .map_err(|e| match e {
            crate::scope::PlanError::Unplaceable { binding } => LowerError::Unplaceable {
                var: q.bindings[binding].var.clone(),
            },
        })?;
        let scope = render_scope(q, &parts, &plan, head, &resolved);
        match &plan.decorrelation {
            Some(dec) => PlanNode::SemiJoin {
                scope_id: scope_identity(q),
                anti: bool_role.unwrap_or(false),
                keys: dec
                    .keys
                    .iter()
                    .map(|k| parts.filters[k.filter].to_string())
                    .collect(),
                prelude: dec
                    .probe_filters
                    .iter()
                    .map(|&i| parts.filters[i].to_string())
                    .collect(),
                est_keys: dec.est_keys,
                build: Box::new(scope),
            },
            None => scope,
        }
    };

    // Push this scope's bindings for children (laterals, subformulas,
    // spines all evaluate under the full scope environment).
    let base = stack.frames.len();
    for b in &q.bindings {
        let attrs = match &b.source {
            BindingSource::Named(n) => resolver.resolve(n).map(|r| r.schema).unwrap_or_default(),
            BindingSource::Collection(c) => c.head.attrs.clone(),
        };
        stack.frames.push((b.var.clone(), attrs));
    }

    // Children: laterals, boolean subformulas, spines.
    let mut children = Vec::new();
    for b in &q.bindings {
        if let BindingSource::Collection(c) = &b.source {
            children.push(ChildPlan {
                label: format!("lateral {}", b.var),
                plan: lower_collection_in(c, resolver, mode, decorrelate, indexes, stack)?,
            });
        }
    }
    for sub in parts.pre_bool.iter().chain(parts.post_bool.iter()) {
        collect_bool_children(
            sub,
            false,
            resolver,
            mode,
            decorrelate,
            indexes,
            stack,
            &mut children,
        )?;
    }
    for spine in &parts.spines {
        let mut spine_children = Vec::new();
        collect_spine_children(
            spine,
            head,
            resolver,
            mode,
            decorrelate,
            indexes,
            stack,
            &mut spine_children,
        )?;
        children.extend(spine_children);
    }
    stack.frames.truncate(base);

    let scope = attach_children(scope, children);

    // A grouping operator wraps the pipeline in an aggregation node.
    Ok(match &q.grouping {
        Some(g) => PlanNode::Aggregate {
            keys: g.keys.iter().map(|k| k.to_string()).collect(),
            assigns: render_assigns(&parts.agg_assigns),
            tests: parts.agg_tests.iter().map(|p| p.to_string()).collect(),
            input: Box::new(scope),
        },
        None => scope,
    })
}

fn attach_children(node: PlanNode, mut new_children: Vec<ChildPlan>) -> PlanNode {
    match node {
        PlanNode::Scope {
            scope_id,
            steps,
            prelude,
            residual,
            assigns,
            mut children,
        } => {
            children.append(&mut new_children);
            PlanNode::Scope {
                scope_id,
                steps,
                prelude,
                residual,
                assigns,
                children,
            }
        }
        // Decorrelated scopes carry their children (laterals, nested
        // subformulas) on the build pipeline.
        PlanNode::SemiJoin {
            scope_id,
            anti,
            keys,
            prelude,
            est_keys,
            build,
        } => PlanNode::SemiJoin {
            scope_id,
            anti,
            keys,
            prelude,
            est_keys,
            build: Box::new(attach_children(*build, new_children)),
        },
        other => other, // outer-join scopes: children omitted from display
    }
}

/// Quantified subformulas of a boolean conjunct become labeled children:
/// positive scopes are semi-joins, negated ones anti-joins.
#[allow(clippy::too_many_arguments)]
fn collect_bool_children(
    f: &Formula,
    negated: bool,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
    decorrelate: bool,
    indexes: bool,
    stack: &mut ScopeStack,
    out: &mut Vec<ChildPlan>,
) -> Result<(), LowerError> {
    match f {
        Formula::Quant(q) => {
            let label = if negated {
                "anti-join ¬∃"
            } else {
                "semi-join ∃"
            };
            out.push(ChildPlan {
                label: label.to_string(),
                plan: lower_quant(
                    q,
                    "\u{0}",
                    resolver,
                    mode,
                    decorrelate,
                    indexes,
                    Some(negated),
                    stack,
                )?,
            });
            Ok(())
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                collect_bool_children(
                    sub,
                    negated,
                    resolver,
                    mode,
                    decorrelate,
                    indexes,
                    stack,
                    out,
                )?;
            }
            Ok(())
        }
        Formula::Not(inner) => collect_bool_children(
            inner,
            !negated,
            resolver,
            mode,
            decorrelate,
            indexes,
            stack,
            out,
        ),
        Formula::Pred(_) => Ok(()),
    }
}

/// Spine subformulas (assignment-bearing nested scopes) lower as plans of
/// their own, labeled `spine`.
#[allow(clippy::too_many_arguments)]
fn collect_spine_children(
    f: &Formula,
    head: &str,
    resolver: &dyn SourceResolver,
    mode: PlanMode,
    decorrelate: bool,
    indexes: bool,
    stack: &mut ScopeStack,
    out: &mut Vec<ChildPlan>,
) -> Result<(), LowerError> {
    match f {
        Formula::Quant(q) => {
            out.push(ChildPlan {
                label: "spine".to_string(),
                plan: lower_quant(q, head, resolver, mode, decorrelate, indexes, None, stack)?,
            });
            Ok(())
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                collect_spine_children(
                    sub,
                    head,
                    resolver,
                    mode,
                    decorrelate,
                    indexes,
                    stack,
                    out,
                )?;
            }
            Ok(())
        }
        Formula::Not(_) | Formula::Pred(_) => Ok(()),
    }
}

/// Render a planned scope into a [`PlanNode::Scope`]. `resolved` supplies
/// per-binding schemas so index-range bounds render as column names.
fn render_scope(
    q: &Quant,
    parts: &crate::analysis::Parts<'_>,
    plan: &ScopePlan,
    head: &str,
    resolved: &[Option<ResolvedSource>],
) -> PlanNode {
    let render_filter = |i: &usize| parts.filters[*i].to_string();
    let axis = plan.partition_axis();
    let steps = plan
        .steps
        .iter()
        .enumerate()
        .map(|(step_idx, s)| {
            let b = &q.bindings[s.binding];
            let source = match &b.source {
                BindingSource::Named(n) => n.clone(),
                BindingSource::Collection(c) => format!("{{{}}}", c.head),
            };
            let access = match &s.access {
                Access::Scan => "scan".to_string(),
                Access::HashProbe { keys } => {
                    let keys: Vec<String> = keys
                        .iter()
                        .map(|k| parts.filters[k.eq.filter].to_string())
                        .collect();
                    format!("hash-probe on [{}]", keys.join(", "))
                }
                Access::External { pattern, .. } => format!("access-pattern #{pattern}"),
                Access::Abstract { .. } => "abstract-check".to_string(),
                Access::Nested => "lateral".to_string(),
                Access::IndexRange { cols, .. } => {
                    // Bound prefix as column names; the closing range
                    // column carries a `..` suffix: `index-range on [A, B..]`.
                    let schema = resolved[s.binding].as_ref().map(|r| r.schema.as_slice());
                    let names: Vec<String> = cols
                        .iter()
                        .enumerate()
                        .map(|(ci, &c)| {
                            let name = schema
                                .and_then(|sch| sch.get(c).cloned())
                                .unwrap_or_else(|| format!("#{c}"));
                            if ci + 1 == cols.len() {
                                format!("{name}..")
                            } else {
                                name
                            }
                        })
                        .collect();
                    format!("index-range on [{}]", names.join(", "))
                }
            };
            StepNode {
                var: b.var.clone(),
                source,
                access,
                pushed: s.filters.iter().map(render_filter).collect(),
                est: s.estimated_rows,
                partition: axis == Some(step_idx),
            }
        })
        .collect();
    PlanNode::Scope {
        scope_id: scope_identity(q),
        steps,
        prelude: plan.prelude_filters.iter().map(render_filter).collect(),
        residual: plan.leaf_filters.iter().map(render_filter).collect(),
        assigns: parts
            .assigns
            .iter()
            .map(|(attr, expr)| format!("{head}.{attr} = {expr}"))
            .collect(),
        children: Vec::new(),
    }
}
