//! Planner inputs: the abstract description of one quantifier scope.
//!
//! The engine (or the `EXPLAIN` walker) describes a scope — its bindings,
//! their resolved source kinds, the filter predicates, and which outer
//! variables are in reach — and the planner turns that description into a
//! [`ScopePlan`](crate::physical::ScopePlan). The spec deliberately knows
//! nothing about engine types: relations appear only as schemas and
//! cardinalities, so the same planner serves execution (live statistics)
//! and static `EXPLAIN` (catalog-level statistics).

use arc_core::ast::{CmpOp, Predicate};
use arc_core::value::Value;

/// Default cardinality assumed for sources whose row count is unknown at
/// plan time (intensional relations in static `EXPLAIN`, for example).
pub const DEFAULT_ROWS: usize = 32;

/// Estimated rows produced by one lateral (nested-collection) evaluation.
pub const NESTED_EST: f64 = 8.0;

/// Estimated rows produced by one external access-pattern completion.
pub const EXTERNAL_EST: f64 = 1.0;

/// Estimated rows produced by one abstract-relation membership check.
pub const ABSTRACT_EST: f64 = 1.0;

/// What a range variable's source looks like to the planner.
#[derive(Debug, Clone)]
pub enum SourceSpec<'a> {
    /// A materialized relation (base, defined, or fixpoint intermediate):
    /// scannable, probeable, always placeable.
    Relation {
        /// Attribute names, in column order.
        schema: &'a [String],
        /// Row count, when known (`None` in static `EXPLAIN`).
        rows: Option<usize>,
    },
    /// An external relation solved through access patterns (§2.13.1): each
    /// pattern lists the schema positions that must be determined by
    /// equality predicates before the pattern can run.
    External {
        /// Full schema of the external relation.
        schema: &'a [String],
        /// Bound-attribute positions, one slice per access pattern, in
        /// declaration order (the first satisfiable pattern is chosen).
        patterns: Vec<&'a [usize]>,
    },
    /// An abstract relation checked in context (§2.13.2): placeable only
    /// once *every* head attribute is determined by an equality.
    Abstract {
        /// The abstract definition's head attributes.
        attrs: &'a [String],
    },
    /// A nested (lateral) collection evaluated per outer environment:
    /// placeable once its free variables are bound.
    Nested {
        /// The nested collection's head attributes.
        attrs: &'a [String],
        /// Free variables the nested body references.
        free: Vec<String>,
    },
}

impl SourceSpec<'_> {
    /// The attribute schema this source exposes to later probe/input
    /// expressions.
    pub fn schema(&self) -> &[String] {
        match self {
            SourceSpec::Relation { schema, .. } => schema,
            SourceSpec::External { schema, .. } => schema,
            SourceSpec::Abstract { attrs } => attrs,
            SourceSpec::Nested { attrs, .. } => attrs,
        }
    }
}

/// One range-variable binding, as the planner sees it.
#[derive(Debug, Clone)]
pub struct BindingSpec<'a> {
    /// The range variable introduced by the binding.
    pub var: &'a str,
    /// Its resolved source.
    pub source: SourceSpec<'a>,
}

/// The outer lexical environment a scope is planned under: which variables
/// are already bound outside the scope, and with what attributes.
pub trait OuterScope {
    /// The attribute schema of `var`'s innermost outer binding, or `None`
    /// when no outer binding exists.
    fn attrs(&self, var: &str) -> Option<&[String]>;
}

/// An [`OuterScope`] with no variables (top-level scopes).
pub struct NoOuter;

impl OuterScope for NoOuter {
    fn attrs(&self, _var: &str) -> Option<&[String]> {
        None
    }
}

/// Cardinality side-statistics the host can supply: distinct join-key
/// counts (driving the greedy ordering's probe-cost estimate
/// `rows / distinct`) and, when the catalog has been `ANALYZE`d,
/// per-column selectivities of constant comparisons (driving scan-cost
/// scaling, access-path choice, and the partition-axis threshold).
///
/// Every method may answer `None` ("unknown"): the planner then falls
/// back to its pre-statistics behaviour, so a stats-free catalog plans
/// exactly as it always has. The execution engine implements this over
/// catalog statistics with a live prefix-sample fallback
/// ([`crate::TableStatsEstimator`] is the pure catalog-statistics
/// implementation `EXPLAIN` uses).
pub trait DistinctEstimator {
    /// Estimated distinct count of `cols` (schema positions) in the
    /// relation behind binding `binding`, or `None` when unknown.
    fn distinct(&self, binding: usize, cols: &[usize]) -> Option<usize>;

    /// Estimated fraction of `binding`'s rows whose column `col`
    /// satisfies `col op value`, or `None` when unknown (no statistics).
    fn selectivity(&self, binding: usize, col: usize, op: CmpOp, value: &Value) -> Option<f64> {
        let _ = (binding, col, op, value);
        None
    }

    /// Estimated fraction of `binding`'s rows whose column `col` can
    /// never satisfy an equality (`NULL`, float `NaN`), or `None` when
    /// unknown. Feeds `IS [NOT] NULL` selectivity (approximate: the
    /// statistics count `NaN` as unjoinable, SQL's `IS NULL` does not —
    /// an estimate-only distinction).
    fn null_fraction(&self, binding: usize, col: usize) -> Option<f64> {
        let _ = (binding, col);
        None
    }

    /// Estimated fraction of `binding`'s rows whose column `col` falls in
    /// the interval described by an optional lower bound (`Gt`/`Ge`) and
    /// an optional upper bound (`Lt`/`Le`) — the quantity the index-range
    /// access path is priced by. The default composes the single-bound
    /// [`selectivity`](Self::selectivity) answers with the
    /// inclusion–exclusion identity `sel(lo ∧ hi) = sel(lo) + sel(hi) −
    /// sel(non-null)` (exact for histogram fractions); statistics-backed
    /// implementations may answer directly from their sketches.
    fn range_selectivity(
        &self,
        binding: usize,
        col: usize,
        lo: Option<(CmpOp, &Value)>,
        hi: Option<(CmpOp, &Value)>,
    ) -> Option<f64> {
        match (lo, hi) {
            (Some((lop, lv)), Some((hop, hv))) => {
                let l = self.selectivity(binding, col, lop, lv)?;
                let h = self.selectivity(binding, col, hop, hv)?;
                let nn = 1.0
                    - self
                        .null_fraction(binding, col)
                        .unwrap_or(0.0)
                        .clamp(0.0, 1.0);
                Some((l + h - nn).clamp(0.0, l.min(h)))
            }
            (Some((op, v)), None) | (None, Some((op, v))) => self.selectivity(binding, col, op, v),
            (None, None) => None,
        }
    }
}

/// Everything the planner needs to know about one quantifier scope.
pub struct ScopeSpec<'a> {
    /// The bindings, in declaration order.
    pub bindings: Vec<BindingSpec<'a>>,
    /// The scope's filter predicates (no aggregates, no head assignments —
    /// the engine's partition stage routes those elsewhere).
    pub filters: &'a [&'a Predicate],
    /// The outer lexical environment.
    pub outer: &'a dyn OuterScope,
    /// Optional live statistics (execution supplies one; `EXPLAIN` not).
    pub estimator: Option<&'a dyn DistinctEstimator>,
    /// Whether the planner may choose the index-range access path
    /// (ordered-secondary-index scans). The engine's `ARC_INDEX` escape
    /// hatch turns this off; the plan then degrades to scans/probes.
    pub indexes: bool,
}

/// Why a scope could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No placement order satisfies the bindings' input requirements; the
    /// index is the first unplaceable binding in declaration order (the
    /// caller maps it onto its source kind for a precise diagnostic).
    Unplaceable {
        /// Index into [`ScopeSpec::bindings`].
        binding: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Unplaceable { binding } => {
                write!(f, "binding #{binding} cannot be placed in any join order")
            }
        }
    }
}

impl std::error::Error for PlanError {}
