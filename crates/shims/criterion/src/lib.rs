//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds with no access to crates.io, so the benchmark API
//! surface the repo uses is vendored here as a real — if statistically
//! simple — measurement harness: per benchmark it warms up, then runs
//! timed batches until the measurement budget is spent, and reports the
//! **median** per-iteration time over the collected samples. No outlier
//! analysis, no HTML reports, no baseline comparison.
//!
//! Results print one line per benchmark:
//!
//! ```text
//! bench: ablation_fixpoint/naive/16            median     152.3 µs  (10 samples)
//! ```
//!
//! and are also appended as JSON lines to the file named by the
//! `CRITERION_SHIM_JSON` environment variable when set, which is how the
//! repo records `BENCH_eval.json`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver: configuration + result sink.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget across all samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, id, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &full, &mut f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        run_benchmark(self.criterion, &full, &mut |b| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name + parameter display.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    /// Iterations to run in the current timed batch.
    iters: u64,
    /// Measured wall time of the batch.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, `self.iters` times, recording total elapsed time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// True when the binary was invoked in test/smoke mode (`cargo bench --
/// --test`, mirroring upstream criterion): every benchmark routine runs
/// exactly once, with no warm-up, measurement, or JSON output — CI uses
/// this to keep bench targets compiling *and running* without paying
/// measurement time.
fn smoke_mode() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_benchmark<F>(config: &Criterion, id: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if smoke_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench: {id:<55} smoke ok (1 iteration, --test mode)");
        return;
    }
    // Calibrate: run single iterations until the warm-up budget is spent,
    // learning the per-iteration cost.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut warm_iters: u32 = 0;
    while warm_start.elapsed() < config.warm_up_time || warm_iters < 1 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
    }

    // Batch size so that `sample_size` batches fill the measurement budget.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let batch = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / batch as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = samples_ns[samples_ns.len() / 2];

    println!(
        "bench: {id:<55} median {:>12}  ({} samples, {batch} iters/sample)",
        format_ns(median),
        samples_ns.len(),
    );
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            host_meta_line(&mut file);
            let nproc = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(0);
            let caveat = if overhead_only(id, nproc) {
                ",\"overhead_only\":true"
            } else {
                ""
            };
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"median_ns\":{median:.1},\"samples\":{},\"iters_per_sample\":{batch}{caveat}}}",
                id.replace('"', "'"),
                samples_ns.len(),
            );
        }
    }
}

/// Whether a recorded sample measures only bookkeeping overhead: the
/// `ablation_parallel` series compares thread counts, so on a single-core
/// host every "parallel" number is morsel overhead, not scaling — mark it
/// so a consumer of `BENCH_eval.json` can filter without knowing the
/// recording host. Pure so the classification is testable.
fn overhead_only(id: &str, nproc: usize) -> bool {
    nproc <= 1 && id.starts_with("ablation_parallel/")
}

/// Once per process, prepend a host-metadata line to the JSON sink: the
/// machine's available parallelism (`nproc`) and the `ARC_THREADS`
/// setting the run executed under. Recording hosts vary (the parallel
/// ablation on a single-core box measures overhead, not scaling), so the
/// caveat must be data a consumer can check, not prose.
fn host_meta_line(file: &mut std::fs::File) {
    static WRITTEN: std::sync::Once = std::sync::Once::new();
    WRITTEN.call_once(|| {
        let nproc = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0);
        let threads = std::env::var("ARC_THREADS").unwrap_or_default();
        let _ = writeln!(
            file,
            "{{\"meta\":\"host\",\"nproc\":{nproc},\"arc_threads\":\"{}\"}}",
            threads.replace('"', "'"),
        );
    });
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group entry point, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim_selftest");
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn overhead_only_flags_parallel_series_on_single_core_hosts() {
        assert!(overhead_only("ablation_parallel/eq3_group_scan_t4/4096", 1));
        assert!(overhead_only("ablation_parallel/eq19_multi_scan_t2/512", 0));
        assert!(!overhead_only(
            "ablation_parallel/eq3_group_scan_t4/4096",
            8
        ));
        assert!(!overhead_only("ablation_index/range_join_indexed/16384", 1));
        assert!(!overhead_only("ablation_join_strategy/planned/1024", 1));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.5 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }
}
