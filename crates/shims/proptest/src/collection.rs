//! `prop::collection`: strategies for containers.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A `Vec` of values from an element strategy, with length in a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors with length drawn from `len`
/// (half-open, matching upstream's range semantics).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "collection::vec: empty length range");
    VecStrategy { element, len }
}
