//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds with no access to crates.io, so the subset of the
//! proptest API the repo's property tests use is vendored here:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`/`boxed`,
//!   [`BoxedStrategy`](strategy::BoxedStrategy), weighted unions, tuple
//!   strategies, ranges, `Just`, and `any::<T>()`;
//! * `prop::sample::select`, `prop::collection::vec`, `prop::option::of`,
//!   and a minimal `[set]{m,n}` string-pattern strategy;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! The one deliberate simplification: **no shrinking**. A failing case
//! reports its case number and the deterministic seed, which is enough to
//! replay under a debugger. Generation is seeded per test from the test
//! name, so failures are reproducible run-over-run.

#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary};

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced combinator modules (`prop::sample::select`, …).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Build a strategy choosing among several alternatives, optionally
/// weighted (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-test entry point. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strat), __rng);
                        )*
                        let __case = move ||
                            -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        };
                        __case()
                    },
                );
            }
        )*
    };
}

/// Assert within a property-test body; failures report the generating case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a property-test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion within a property-test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discard the current case (counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
