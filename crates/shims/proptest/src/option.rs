//! `prop::option`: optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// `Option<T>` strategy: `Some` three times out of four (upstream defaults
/// to 90% `Some`; the exact ratio is immaterial to the repo's tests).
#[derive(Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0..4u32) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

/// `prop::option::of`: wrap an element strategy into an `Option` strategy.
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy(element)
}
