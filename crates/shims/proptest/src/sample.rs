//! `prop::sample`: choosing from explicit candidate lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Uniform choice from a fixed candidate vector.
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}

/// `prop::sample::select`: pick uniformly from `candidates`.
pub fn select<T: Clone>(candidates: Vec<T>) -> Select<T> {
    assert!(!candidates.is_empty(), "select: empty candidate list");
    Select(candidates)
}
