//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A value generator. Unlike upstream proptest there is no value tree and
/// no shrinking: a strategy simply draws one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// --- Ranges ----------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64);

// --- Tuples ----------------------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0..2u32) == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<i32>()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<i64>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy over the full domain of `T` (see [`Arbitrary`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- String patterns -------------------------------------------------------

/// `&str` as a strategy: a minimal regex subset `[set]{min,max}` where
/// `set` is literal characters and `a-z` style ranges. Anything else is
/// rejected at generation time (the repo only uses class-repetition
/// patterns).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_repeat(self).unwrap_or_else(|| {
            panic!("unsupported string pattern `{self}` (shim supports `[set]{{m,n}}` only)")
        });
        let len = rng.gen_range(min..max + 1);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_repeat_parses() {
        let (chars, lo, hi) = parse_class_repeat("[a-z]{0,6}").unwrap();
        assert_eq!(chars.len(), 26);
        assert_eq!((lo, hi), (0, 6));
        let (chars, lo, hi) = parse_class_repeat("[abc]{2}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (2, 2));
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn union_honours_zero_weight_avoidance() {
        let mut rng = TestRng::seed_from_u64(1);
        let u = crate::prop_oneof![2 => Just(1), 1 => Just(2)];
        let mut saw = [0usize; 3];
        for _ in 0..300 {
            saw[u.generate(&mut rng) as usize] += 1;
        }
        assert!(saw[1] > saw[2]);
        assert!(saw[2] > 0);
    }
}
