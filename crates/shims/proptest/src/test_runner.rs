//! Case-running machinery behind the `proptest!` macro.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Configuration for a property test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without counting it as run.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Stable seed derived from the test path (FNV-1a), so each test has its
/// own deterministic stream reproducible across runs and platforms.
fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run up to `config.cases` accepted cases, panicking on the first failure
/// with enough context to replay (test path + case index).
pub fn run_cases<F>(config: &ProptestConfig, test_path: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(test_path));
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = (config.cases as u64).max(1) * 20;
    let mut case_index: u64 = 0;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_path}: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_path}: property failed at case #{case_index}\n{msg}");
            }
        }
        case_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_configured_number_of_cases() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics_with_context() {
        run_cases(&ProptestConfig::with_cases(4), "t", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn runaway_rejection_is_detected() {
        run_cases(&ProptestConfig::with_cases(4), "t", |_| {
            Err(TestCaseError::Reject)
        });
    }
}
