//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of `rand` APIs the repo uses are vendored here: a
//! deterministic xoshiro256++ generator behind [`rngs::StdRng`], the
//! [`Rng`] extension trait (`gen_range`, `gen_bool`, `gen`), and
//! [`SeedableRng`]. The statistical quality is more than sufficient for
//! workload generation and randomized equivalence testing; nothing here is
//! suitable for cryptography.
//!
//! The value stream is stable across runs and platforms (tests seed
//! explicitly and assert on generated instances), which is exactly what a
//! reproducible benchmark suite wants — upstream `rand` makes no such
//! guarantee across versions.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling support: the value types `gen_range` can produce.
pub trait SampleUniform: Sized + Copy {
    /// Draw a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire-style widening multiply avoids modulo bias for the
                // small spans used by the generators.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Values producible by `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
