//! AST for the supported SQL subset.
//!
//! The subset covers every SQL query printed in the paper: SELECT
//! [DISTINCT], FROM with aliases and comma joins, INNER/LEFT/FULL JOIN …
//! ON, (JOIN) LATERAL subqueries, WHERE with AND/OR/NOT, (NOT) EXISTS,
//! (NOT) IN subqueries, IS [NOT] NULL, scalar subqueries (in SELECT items
//! and comparisons), aggregates with DISTINCT and `count(*)`, GROUP BY,
//! HAVING, and UNION [ALL]. ORDER BY/LIMIT are out of scope (the paper
//! defers sorted collections, §5).

use arc_core::value::Value;
use std::fmt;

/// A query: a select or a union of queries.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlQuery {
    /// A plain SELECT block.
    Select(Select),
    /// `left UNION [ALL] right`.
    Union {
        /// Left branch.
        left: Box<SqlQuery>,
        /// Right branch.
        right: Box<SqlQuery>,
        /// `UNION ALL` (bag union) vs. `UNION` (set union).
        all: bool,
    },
}

/// A SELECT block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause: comma-separated table references (each possibly a join
    /// tree).
    pub from: Vec<TableRef>,
    /// WHERE condition.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions (column references in our subset).
    pub group_by: Vec<SqlExpr>,
    /// HAVING condition.
    pub having: Option<SqlExpr>,
}

/// One projection item: `expr [AS alias]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: SqlExpr,
    /// Optional alias.
    pub alias: Option<String>,
}

/// A FROM-clause element.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [AS] alias`.
    Table {
        /// Relation name.
        name: String,
        /// Alias (defaults to the name).
        alias: Option<String>,
    },
    /// `[LATERAL] (subquery) [AS] alias`.
    Subquery {
        /// The subquery.
        query: Box<SqlQuery>,
        /// Mandatory alias.
        alias: String,
        /// LATERAL marker (correlation allowed).
        lateral: bool,
    },
    /// `left <kind> JOIN right [ON cond]`.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Right operand.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// ON condition (`None` for CROSS or `ON true`).
        on: Option<SqlExpr>,
    },
}

impl TableRef {
    /// The binding variable this reference introduces (alias or name); join
    /// nodes have none.
    pub fn binding_var(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join kinds of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `FULL [OUTER] JOIN`.
    Full,
    /// `CROSS JOIN`.
    Cross,
}

/// Scalar/boolean expressions (SQL conflates them; the lowering separates
/// formula context from scalar context).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// `[table.]column`.
    Column {
        /// Qualifier (alias), if any.
        table: Option<String>,
        /// Column name.
        column: String,
    },
    /// A literal.
    Literal(Value),
    /// Binary operation (comparison, logical, or arithmetic).
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        query: Box<SqlQuery>,
        /// `NOT EXISTS`.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// The subquery (single projected column).
        query: Box<SqlQuery>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `(subquery)` used as a scalar.
    ScalarSubquery(Box<SqlQuery>),
    /// Aggregate call.
    Agg {
        /// Function name (`sum`, `count`, `avg`, `min`, `max`).
        func: String,
        /// Argument (`None` = `*`).
        arg: Option<Box<SqlExpr>>,
        /// `DISTINCT` argument.
        distinct: bool,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // symbols are self-describing
pub enum BinOp {
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// Is this a comparison operator?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Is this a logical connective?
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}
