//! # arc-sql — the SQL modality of ARC
//!
//! The `SQL ↔ ARC` translator the paper announces as its systems next step
//! (§5): a parser for the SQL subset that covers every query printed in the
//! paper, a lowering into ARC that applies the paper's own normalizations
//! (scalar subqueries → laterals §2.12, `NOT IN` → null-guarded
//! `NOT EXISTS` Fig 11, `DISTINCT`/`UNION` → dedup-by-grouping §2.7, outer
//! joins → join annotations §2.11), and a renderer from ARC back to SQL.
//!
//! ```
//! use arc_core::binder::SchemaMap;
//! use arc_core::Conventions;
//! use arc_sql::{arc_to_sql, sql_to_arc};
//!
//! let mut schemas = SchemaMap::new();
//! schemas.insert("R".into(), vec!["A".into(), "B".into()]);
//!
//! // Paper Fig 4a → Eq (3).
//! let arc = sql_to_arc("select R.A, sum(R.B) sm from R group by R.A", &schemas).unwrap();
//! assert_eq!(arc.head.attrs, vec!["A", "sm"]);
//!
//! // …and back to SQL.
//! let sql = arc_to_sql(&arc, &Conventions::sql()).unwrap();
//! assert!(sql.contains("group by"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod render;

pub use ast::{BinOp, JoinKind, Select, SelectItem, SqlExpr, SqlQuery, TableRef};
pub use lower::{lower_query, LowerError};
pub use parser::{parse_sql, SqlParseError};
pub use render::{render_collection, render_sentence, RenderError};

use arc_core::ast::Collection;
use arc_core::binder::SchemaMap;
use arc_core::conventions::Conventions;
use std::fmt;

/// End-to-end error for [`sql_to_arc`].
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Parsing failed.
    Parse(SqlParseError),
    /// Lowering failed.
    Lower(LowerError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parse SQL text and lower it to an ARC collection (head named `Q`).
pub fn sql_to_arc(sql: &str, schemas: &SchemaMap) -> Result<Collection, SqlError> {
    let parsed = parse_sql(sql).map_err(SqlError::Parse)?;
    lower_query(&parsed, schemas).map_err(SqlError::Lower)
}

/// Render an ARC collection to SQL text under the given conventions.
pub fn arc_to_sql(c: &Collection, conv: &Conventions) -> Result<String, RenderError> {
    render_collection(c, conv)
}

/// Reserved words of the SQL subset (shared between parser and renderer).
pub(crate) fn parser_reserved(word: &str) -> bool {
    matches!(
        word.to_ascii_lowercase().as_str(),
        "select"
            | "distinct"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "union"
            | "all"
            | "as"
            | "join"
            | "inner"
            | "left"
            | "full"
            | "cross"
            | "outer"
            | "lateral"
            | "on"
            | "and"
            | "or"
            | "not"
            | "exists"
            | "in"
            | "is"
            | "null"
            | "true"
            | "false"
            | "sum"
            | "count"
            | "avg"
            | "min"
            | "max"
    )
}
