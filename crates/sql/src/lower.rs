//! SQL → ARC lowering.
//!
//! Translates the SQL subset into ARC collections, applying the paper's own
//! normalizations along the way:
//!
//! * scalar subqueries in SELECT items become **lateral nested
//!   collections** (§2.12, Fig 13: only the lateral form preserves
//!   per-outer-tuple semantics under bag semantics);
//! * scalar subqueries in comparisons become grouped nested quantifier
//!   scopes (the count-bug version-1 shape, Eq (27));
//! * `NOT IN` becomes the null-guarded `NOT EXISTS` of Fig 11 / Eq (17),
//!   reproducing SQL's three-valued behaviour in the calculus;
//! * `DISTINCT` and `UNION` (without `ALL`) become deduplicating wrappers —
//!   grouping on all projected attributes (§2.7);
//! * `LEFT/FULL JOIN` becomes a join annotation over the binding list
//!   (§2.11) with the ON condition merged into the body.

use crate::ast::*;
use arc_core::ast as arc;
use arc_core::ast::{AttrRef, Binding, CmpOp, Formula, Grouping, Head, JoinTree, Predicate};
use arc_core::binder::SchemaMap;
use arc_core::value::Value;
use std::fmt;

/// Lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// FROM references a table the schema map does not know.
    UnknownTable(String),
    /// A column reference did not resolve.
    UnknownColumn(String),
    /// An unqualified column resolves to more than one range variable.
    AmbiguousColumn(String),
    /// The construct falls outside the supported subset.
    Unsupported(String),
    /// A lowering invariant was violated (a bug in the lowerer). Surfaced
    /// as an error instead of a panic so malformed SQL can never abort
    /// the host process.
    Internal(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            LowerError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            LowerError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            LowerError::Unsupported(msg) => write!(f, "unsupported SQL: {msg}"),
            LowerError::Internal(msg) => write!(f, "internal SQL lowering error: {msg}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower a SQL query to an ARC collection named `Q`.
pub fn lower_query(q: &SqlQuery, schemas: &SchemaMap) -> Result<arc::Collection, LowerError> {
    let mut lw = Lowerer {
        schemas,
        scopes: Vec::new(),
        counter: 0,
    };
    lw.query(q, "Q", None)
}

struct Scope {
    vars: Vec<(String, Vec<String>)>,
}

struct Lowerer<'s> {
    schemas: &'s SchemaMap,
    scopes: Vec<Scope>,
    counter: usize,
}

impl<'s> Lowerer<'s> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    /// Lower a query; `expected_attrs` aligns UNION branch heads.
    fn query(
        &mut self,
        q: &SqlQuery,
        head_name: &str,
        expected_attrs: Option<&[String]>,
    ) -> Result<arc::Collection, LowerError> {
        match q {
            SqlQuery::Select(s) => self.select(s, head_name, expected_attrs),
            SqlQuery::Union { left, right, all } => {
                let left_c = self.query(left, head_name, expected_attrs)?;
                let attrs = left_c.head.attrs.clone();
                let right_c = self.query(right, head_name, Some(&attrs))?;
                let combined = arc::Collection {
                    head: left_c.head.clone(),
                    body: Formula::Or(vec![left_c.body, right_c.body]),
                };
                if *all {
                    Ok(combined)
                } else {
                    Ok(self.dedup_wrap(combined))
                }
            }
        }
    }

    /// Wrap a collection in a deduplicating outer collection: grouping on
    /// all projected attributes (§2.7).
    fn dedup_wrap(&mut self, inner: arc::Collection) -> arc::Collection {
        let head = inner.head.clone();
        let var = self.fresh("d");
        let inner_name = self.fresh("D");
        let renamed = arc::Collection {
            head: Head {
                relation: inner_name.clone(),
                attrs: head.attrs.clone(),
            },
            body: rename_head(inner.body, &head.relation, Some(&inner_name)),
        };
        let keys: Vec<AttrRef> = head
            .attrs
            .iter()
            .map(|a| AttrRef::new(var.clone(), a.clone()))
            .collect();
        let assigns: Vec<Formula> = head
            .attrs
            .iter()
            .map(|a| {
                Formula::Pred(Predicate::Cmp {
                    left: arc::Scalar::Attr(AttrRef::new(head.relation.clone(), a.clone())),
                    op: CmpOp::Eq,
                    right: arc::Scalar::Attr(AttrRef::new(var.clone(), a.clone())),
                })
            })
            .collect();
        arc::Collection {
            head,
            body: Formula::Quant(Box::new(arc::Quant {
                bindings: vec![Binding::nested(var, renamed)],
                grouping: Some(Grouping::by(keys)),
                join: None,
                body: Formula::And(assigns),
            })),
        }
    }

    fn select(
        &mut self,
        s: &Select,
        head_name: &str,
        expected_attrs: Option<&[String]>,
    ) -> Result<arc::Collection, LowerError> {
        // 1. FROM: flatten to bindings (+ optional join annotation) and
        //    collect ON conditions.
        let mut bindings: Vec<Binding> = Vec::new();
        let mut scope_vars: Vec<(String, Vec<String>)> = Vec::new();
        let mut on_conds: Vec<SqlExpr> = Vec::new();
        let mut join_parts: Vec<JoinTree> = Vec::new();
        let mut has_outer = false;

        // Two passes: register all FROM variables first so subqueries and ON
        // clauses can resolve siblings (LATERAL needs the earlier ones; we
        // register incrementally below instead for correctness).
        self.scopes.push(Scope { vars: Vec::new() });
        for tref in &s.from {
            let part = self.table_ref(
                tref,
                &mut bindings,
                &mut scope_vars,
                &mut on_conds,
                &mut has_outer,
            )?;
            join_parts.push(part);
        }

        let join = self.join_annotation(has_outer, join_parts)?;

        // 2. Head attributes.
        let mut attrs: Vec<String> = Vec::new();
        for (i, item) in s.items.iter().enumerate() {
            let name = match expected_attrs {
                Some(exp) => exp
                    .get(i)
                    .cloned()
                    .ok_or_else(|| LowerError::Unsupported("UNION arity mismatch".into()))?,
                None => item_name(item, i),
            };
            attrs.push(name);
        }
        if expected_attrs.map(|e| e.len()) == Some(attrs.len()) || expected_attrs.is_none() {
            // ok
        } else {
            return Err(LowerError::Unsupported("UNION arity mismatch".into()));
        }

        // 3. Body conjuncts.
        let mut conjuncts: Vec<Formula> = Vec::new();
        for cond in &on_conds {
            conjuncts.push(self.bool_expr(cond)?);
        }
        if let Some(w) = &s.where_clause {
            conjuncts.push(self.bool_expr(w)?);
        }

        // 4. Grouping.
        let has_agg = s.items.iter().any(|i| contains_agg(&i.expr))
            || s.having.as_ref().map(contains_agg).unwrap_or(false);
        let grouping = if !s.group_by.is_empty() {
            let mut keys = Vec::with_capacity(s.group_by.len());
            for g in &s.group_by {
                match self.scalar_expr(g)? {
                    arc::Scalar::Attr(a) => keys.push(a),
                    _ => {
                        return Err(LowerError::Unsupported(
                            "GROUP BY supports column references only".into(),
                        ))
                    }
                }
            }
            Some(Grouping::by(keys))
        } else if has_agg {
            Some(Grouping::empty())
        } else {
            None
        };

        // 5. Projection: assignments (scalar subqueries become laterals).
        for (i, item) in s.items.iter().enumerate() {
            let expr = self.extract_scalar_subqueries(&item.expr, &mut bindings)?;
            let scalar = self.scalar_expr(&expr)?;
            conjuncts.push(Formula::Pred(Predicate::Cmp {
                left: arc::Scalar::Attr(AttrRef::new(head_name, attrs[i].clone())),
                op: CmpOp::Eq,
                right: scalar,
            }));
        }

        // 6. HAVING.
        if let Some(h) = &s.having {
            conjuncts.push(self.bool_expr(h)?);
        }

        self.scopes.pop();

        let collection = arc::Collection {
            head: Head {
                relation: head_name.to_string(),
                attrs,
            },
            body: Formula::Quant(Box::new(arc::Quant {
                bindings,
                grouping,
                join,
                body: Formula::And(conjuncts),
            })),
        };
        if s.distinct {
            Ok(self.dedup_wrap(collection))
        } else {
            Ok(collection)
        }
    }

    /// Lower one FROM element; registers bindings/scope vars and collects
    /// ON conditions; returns the element's join-annotation part.
    fn table_ref(
        &mut self,
        tref: &TableRef,
        bindings: &mut Vec<Binding>,
        scope_vars: &mut Vec<(String, Vec<String>)>,
        on_conds: &mut Vec<SqlExpr>,
        has_outer: &mut bool,
    ) -> Result<JoinTree, LowerError> {
        match tref {
            TableRef::Table { name, alias } => {
                let var = alias.clone().unwrap_or_else(|| name.clone());
                let attrs = self
                    .schemas
                    .get(name)
                    .cloned()
                    .ok_or_else(|| LowerError::UnknownTable(name.clone()))?;
                bindings.push(Binding::named(var.clone(), name.clone()));
                self.register(var.clone(), attrs.clone())?;
                scope_vars.push((var.clone(), attrs));
                Ok(JoinTree::Var(var))
            }
            TableRef::Subquery { query, alias, .. } => {
                let head_name = self.fresh("X");
                let sub = self.query(query, &head_name, None)?;
                let attrs = sub.head.attrs.clone();
                bindings.push(Binding::nested(alias.clone(), sub));
                self.register(alias.clone(), attrs.clone())?;
                scope_vars.push((alias.clone(), attrs));
                Ok(JoinTree::Var(alias.clone()))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.table_ref(left, bindings, scope_vars, on_conds, has_outer)?;
                let mut r = self.table_ref(right, bindings, scope_vars, on_conds, has_outer)?;
                let outer = matches!(kind, JoinKind::Left | JoinKind::Full);
                if let Some(cond) = on {
                    if !is_trivially_true(cond) {
                        if outer {
                            // The engine associates ON conditions with the
                            // predicates that touch the join's right side.
                            // An ON conjunct referencing only the left side
                            // (Fig 12: `r.h = 11`) is encoded with the
                            // paper's literal-leaf trick: the constant
                            // becomes a singleton leaf of the right subtree
                            // so the predicate attaches to this join node.
                            let lowered = self.bool_expr(cond)?;
                            let rvars: std::collections::HashSet<String> =
                                r.vars().iter().map(|v| v.to_string()).collect();
                            for conjunct in lowered.conjuncts() {
                                if let Formula::Pred(p) = conjunct {
                                    let touches_right =
                                        pred_attr_vars(p).iter().any(|v| rvars.contains(v));
                                    if !touches_right {
                                        match first_const(p) {
                                            Some(c) => {
                                                r = JoinTree::Inner(vec![
                                                    JoinTree::Lit(c),
                                                    r,
                                                ]);
                                            }
                                            None => {
                                                return Err(LowerError::Unsupported(
                                                    format!(
                                                        "outer-join ON condition `{p}` references only the preserved side and has no constant to anchor it"
                                                    ),
                                                ))
                                            }
                                        }
                                    }
                                }
                            }
                            on_conds.push(cond.clone());
                        } else {
                            on_conds.push(cond.clone());
                        }
                    }
                }
                match kind {
                    JoinKind::Inner | JoinKind::Cross => Ok(JoinTree::Inner(vec![l, r])),
                    JoinKind::Left => {
                        *has_outer = true;
                        Ok(JoinTree::Left(Box::new(l), Box::new(r)))
                    }
                    JoinKind::Full => {
                        *has_outer = true;
                        Ok(JoinTree::Full(Box::new(l), Box::new(r)))
                    }
                }
            }
        }
    }

    /// Fold FROM-element join parts into the quantifier's join annotation
    /// (`None` when no outer join occurred).
    fn join_annotation(
        &self,
        has_outer: bool,
        mut join_parts: Vec<JoinTree>,
    ) -> Result<Option<JoinTree>, LowerError> {
        if !has_outer {
            return Ok(None);
        }
        Ok(Some(if join_parts.len() == 1 {
            join_parts.pop().ok_or_else(|| {
                LowerError::Internal("outer join annotation with no FROM parts".into())
            })?
        } else {
            JoinTree::Inner(join_parts)
        }))
    }

    fn register(&mut self, var: String, attrs: Vec<String>) -> Result<(), LowerError> {
        self.scopes
            .last_mut()
            .ok_or_else(|| LowerError::Internal("variable registered outside any scope".into()))?
            .vars
            .push((var, attrs));
        Ok(())
    }

    /// Replace scalar subqueries inside a select-item expression with
    /// references to fresh lateral bindings (§2.12).
    fn extract_scalar_subqueries(
        &mut self,
        e: &SqlExpr,
        bindings: &mut Vec<Binding>,
    ) -> Result<SqlExpr, LowerError> {
        Ok(match e {
            SqlExpr::ScalarSubquery(q) => {
                let var = self.fresh("x");
                let (collection, attr) = self.scalar_collection(q)?;
                let attrs = collection.head.attrs.clone();
                bindings.push(Binding::nested(var.clone(), collection));
                self.register(var.clone(), attrs)?;
                SqlExpr::Column {
                    table: Some(var),
                    column: attr,
                }
            }
            SqlExpr::Binary { op, left, right } => SqlExpr::Binary {
                op: *op,
                left: Box::new(self.extract_scalar_subqueries(left, bindings)?),
                right: Box::new(self.extract_scalar_subqueries(right, bindings)?),
            },
            other => other.clone(),
        })
    }

    /// Lower a scalar subquery to a single-attribute collection; returns it
    /// with its output attribute name.
    fn scalar_collection(&mut self, q: &SqlQuery) -> Result<(arc::Collection, String), LowerError> {
        let head_name = self.fresh("X");
        let c = self.query(q, &head_name, None)?;
        if c.head.attrs.len() != 1 {
            return Err(LowerError::Unsupported(
                "scalar subquery must project exactly one column".into(),
            ));
        }
        let attr = c.head.attrs[0].clone();
        Ok((c, attr))
    }

    // -- Boolean expressions ---------------------------------------------------

    fn bool_expr(&mut self, e: &SqlExpr) -> Result<Formula, LowerError> {
        match e {
            SqlExpr::Binary {
                op: BinOp::And,
                left,
                right,
            } => Ok(Formula::And(vec![
                self.bool_expr(left)?,
                self.bool_expr(right)?,
            ])),
            SqlExpr::Binary {
                op: BinOp::Or,
                left,
                right,
            } => Ok(Formula::Or(vec![
                self.bool_expr(left)?,
                self.bool_expr(right)?,
            ])),
            SqlExpr::Not(inner) => Ok(Formula::Not(Box::new(self.bool_expr(inner)?))),
            SqlExpr::IsNull { expr, negated } => Ok(Formula::Pred(Predicate::IsNull {
                expr: self.scalar_expr(expr)?,
                negated: *negated,
            })),
            SqlExpr::Exists { query, negated } => {
                let f = self.subquery_as_formula(query, None)?;
                Ok(if *negated {
                    Formula::Not(Box::new(f))
                } else {
                    f
                })
            }
            SqlExpr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let probe = self.scalar_expr(expr)?;
                if *negated {
                    // Fig 11 / Eq (17): NOT IN with explicit null guards.
                    let f = self.subquery_as_formula_with(query, |item, lw| {
                        Ok(Formula::Or(vec![
                            Formula::Pred(Predicate::Cmp {
                                left: lw.scalar_expr(item)?.clone(),
                                op: CmpOp::Eq,
                                right: probe.clone(),
                            }),
                            Formula::Pred(Predicate::IsNull {
                                expr: lw.scalar_expr(item)?,
                                negated: false,
                            }),
                            Formula::Pred(Predicate::IsNull {
                                expr: probe.clone(),
                                negated: false,
                            }),
                        ]))
                    })?;
                    Ok(Formula::Not(Box::new(f)))
                } else {
                    let f = self.subquery_as_formula_with(query, |item, lw| {
                        Ok(Formula::Pred(Predicate::Cmp {
                            left: lw.scalar_expr(item)?,
                            op: CmpOp::Eq,
                            right: probe.clone(),
                        }))
                    })?;
                    Ok(f)
                }
            }
            SqlExpr::Binary { op, left, right } if op.is_comparison() => {
                let arc_op = cmp_op(*op);
                // Comparison against a scalar subquery → grouped nested
                // scope with an aggregation comparison (Eq (27) shape).
                if let SqlExpr::ScalarSubquery(q) = &**right {
                    let probe = self.scalar_expr(left)?;
                    return self.scalar_subquery_comparison(q, probe, arc_op);
                }
                if let SqlExpr::ScalarSubquery(q) = &**left {
                    let probe = self.scalar_expr(right)?;
                    return self.scalar_subquery_comparison(q, probe, arc_op.flipped());
                }
                Ok(Formula::Pred(Predicate::Cmp {
                    left: self.scalar_expr(left)?,
                    op: arc_op,
                    right: self.scalar_expr(right)?,
                }))
            }
            SqlExpr::Literal(Value::Bool(true)) => Ok(Formula::And(Vec::new())),
            SqlExpr::Literal(Value::Bool(false)) => Ok(Formula::Or(Vec::new())),
            other => Err(LowerError::Unsupported(format!(
                "expression in boolean position: {other:?}"
            ))),
        }
    }

    /// `probe op (SELECT item FROM …)`: lower to a quantifier whose body
    /// carries the comparison as an (aggregation) predicate.
    fn scalar_subquery_comparison(
        &mut self,
        q: &SqlQuery,
        probe: arc::Scalar,
        op: CmpOp,
    ) -> Result<Formula, LowerError> {
        self.subquery_as_formula_with(q, move |item, lw| {
            Ok(Formula::Pred(Predicate::Cmp {
                left: probe.clone(),
                op,
                right: lw.scalar_expr(item)?,
            }))
        })
    }

    /// Lower a subquery to an existential formula (EXISTS shape), ignoring
    /// its projection.
    fn subquery_as_formula(
        &mut self,
        q: &SqlQuery,
        extra: Option<Formula>,
    ) -> Result<Formula, LowerError> {
        self.subquery_as_formula_with(q, move |_item, _lw| {
            Ok(extra.clone().unwrap_or(Formula::And(Vec::new())))
        })
    }

    /// Lower a subquery to a quantifier formula; `with_item` receives the
    /// subquery's single select-item expression to build the extra
    /// predicate tied into the scope (IN probes, scalar comparisons).
    fn subquery_as_formula_with(
        &mut self,
        q: &SqlQuery,
        with_item: impl Fn(&SqlExpr, &mut Self) -> Result<Formula, LowerError> + Clone,
    ) -> Result<Formula, LowerError> {
        let s = match q {
            SqlQuery::Select(s) => s,
            SqlQuery::Union { left, right, all } => {
                if !all {
                    return Err(LowerError::Unsupported(
                        "UNION (distinct) subquery in boolean position".into(),
                    ));
                }
                let l = self.subquery_as_formula_with(left, with_item.clone())?;
                let r = self.subquery_as_formula_with(right, with_item)?;
                return Ok(Formula::Or(vec![l, r]));
            }
        };
        let mut bindings: Vec<Binding> = Vec::new();
        let mut scope_vars: Vec<(String, Vec<String>)> = Vec::new();
        let mut on_conds: Vec<SqlExpr> = Vec::new();
        let mut join_parts: Vec<JoinTree> = Vec::new();
        let mut has_outer = false;
        self.scopes.push(Scope { vars: Vec::new() });
        for tref in &s.from {
            let part = self.table_ref(
                tref,
                &mut bindings,
                &mut scope_vars,
                &mut on_conds,
                &mut has_outer,
            )?;
            join_parts.push(part);
        }
        let join = self.join_annotation(has_outer, join_parts)?;

        let mut conjuncts = Vec::new();
        for cond in &on_conds {
            conjuncts.push(self.bool_expr(cond)?);
        }
        if let Some(w) = &s.where_clause {
            conjuncts.push(self.bool_expr(w)?);
        }
        // The item-level predicate (equality probe or aggregation test).
        let item_expr = s
            .items
            .first()
            .map(|i| i.expr.clone())
            .unwrap_or(SqlExpr::Literal(Value::Int(1)));
        let item_formula = with_item(&item_expr, self)?;
        let item_has_agg = contains_agg(&item_expr);
        conjuncts.push(item_formula);

        if let Some(h) = &s.having {
            conjuncts.push(self.bool_expr(h)?);
        }

        let grouping = if !s.group_by.is_empty() {
            let mut keys = Vec::with_capacity(s.group_by.len());
            for g in &s.group_by {
                match self.scalar_expr(g)? {
                    arc::Scalar::Attr(a) => keys.push(a),
                    _ => {
                        return Err(LowerError::Unsupported(
                            "GROUP BY supports column references only".into(),
                        ))
                    }
                }
            }
            Some(Grouping::by(keys))
        } else if item_has_agg || s.having.as_ref().map(contains_agg).unwrap_or(false) {
            Some(Grouping::empty())
        } else {
            None
        };

        self.scopes.pop();
        Ok(Formula::Quant(Box::new(arc::Quant {
            bindings,
            grouping,
            join,
            body: Formula::And(conjuncts),
        })))
    }

    // -- Scalars -----------------------------------------------------------------

    fn scalar_expr(&mut self, e: &SqlExpr) -> Result<arc::Scalar, LowerError> {
        match e {
            SqlExpr::Column { table, column } => {
                let attr = self.resolve(table.as_deref(), column)?;
                Ok(arc::Scalar::Attr(attr))
            }
            SqlExpr::Literal(v) => Ok(arc::Scalar::Const(v.clone())),
            SqlExpr::Binary { op, left, right } if !op.is_comparison() && !op.is_logical() => {
                Ok(arc::Scalar::Arith {
                    op: match op {
                        BinOp::Add => arc::ArithOp::Add,
                        BinOp::Sub => arc::ArithOp::Sub,
                        BinOp::Mul => arc::ArithOp::Mul,
                        BinOp::Div => arc::ArithOp::Div,
                        _ => unreachable!("filtered by guard"),
                    },
                    left: Box::new(self.scalar_expr(left)?),
                    right: Box::new(self.scalar_expr(right)?),
                })
            }
            SqlExpr::Agg {
                func,
                arg,
                distinct,
            } => {
                let f = match func.as_str() {
                    "sum" => arc::AggFunc::Sum,
                    "count" => arc::AggFunc::Count,
                    "avg" => arc::AggFunc::Avg,
                    "min" => arc::AggFunc::Min,
                    "max" => arc::AggFunc::Max,
                    other => {
                        return Err(LowerError::Unsupported(format!(
                            "aggregate function `{other}`"
                        )))
                    }
                };
                let a = match arg {
                    Some(inner) => arc::AggArg::Expr(self.scalar_expr(inner)?),
                    None => arc::AggArg::Star,
                };
                Ok(arc::Scalar::Agg(Box::new(arc::AggCall {
                    func: f,
                    arg: a,
                    distinct: *distinct,
                })))
            }
            SqlExpr::ScalarSubquery(_) => Err(LowerError::Unsupported(
                "scalar subquery only supported in SELECT items and comparisons".into(),
            )),
            other => Err(LowerError::Unsupported(format!(
                "expression in scalar position: {other:?}"
            ))),
        }
    }

    fn resolve(&self, table: Option<&str>, column: &str) -> Result<AttrRef, LowerError> {
        match table {
            Some(t) => {
                // Qualified: the variable must exist in some scope; trust
                // the attribute (binder/engine re-validate).
                for scope in self.scopes.iter().rev() {
                    if let Some((var, _attrs)) = scope.vars.iter().find(|(v, _)| v == t) {
                        return Ok(AttrRef::new(var.clone(), column));
                    }
                }
                Err(LowerError::UnknownColumn(format!("{t}.{column}")))
            }
            None => {
                let mut found: Option<AttrRef> = None;
                for scope in self.scopes.iter().rev() {
                    for (var, attrs) in &scope.vars {
                        if attrs.iter().any(|a| a == column) {
                            if found.is_some() {
                                return Err(LowerError::AmbiguousColumn(column.to_string()));
                            }
                            found = Some(AttrRef::new(var.clone(), column));
                        }
                    }
                    if found.is_some() {
                        // Closest scope wins; ambiguity only within a scope.
                        break;
                    }
                }
                found.ok_or_else(|| LowerError::UnknownColumn(column.to_string()))
            }
        }
    }
}

/// Rename head references `old.attr` → `new.attr` in assignment positions.
/// With `new = None`, this is identity (used to keep the borrow simple).
fn rename_head(f: Formula, old: &str, new: Option<&str>) -> Formula {
    let Some(new) = new else { return f };
    fn scalar(s: arc::Scalar, old: &str, new: &str) -> arc::Scalar {
        match s {
            arc::Scalar::Attr(a) if a.var == old => arc::Scalar::Attr(AttrRef::new(new, a.attr)),
            arc::Scalar::Arith { op, left, right } => arc::Scalar::Arith {
                op,
                left: Box::new(scalar(*left, old, new)),
                right: Box::new(scalar(*right, old, new)),
            },
            other => other,
        }
    }
    fn walk(f: Formula, old: &str, new: &str) -> Formula {
        match f {
            Formula::Pred(Predicate::Cmp { left, op, right }) => Formula::Pred(Predicate::Cmp {
                left: scalar(left, old, new),
                op,
                right: scalar(right, old, new),
            }),
            Formula::Pred(p) => Formula::Pred(p),
            Formula::And(fs) => Formula::And(fs.into_iter().map(|s| walk(s, old, new)).collect()),
            Formula::Or(fs) => Formula::Or(fs.into_iter().map(|s| walk(s, old, new)).collect()),
            Formula::Not(inner) => Formula::Not(Box::new(walk(*inner, old, new))),
            Formula::Quant(q) => Formula::Quant(Box::new(arc::Quant {
                bindings: q.bindings,
                grouping: q.grouping,
                join: q.join,
                body: walk(q.body, old, new),
            })),
        }
    }
    walk(f, old, new)
}

/// Variables referenced by a predicate's attribute references.
fn pred_attr_vars(p: &Predicate) -> Vec<String> {
    let mut out = Vec::new();
    let mut push = |s: &arc::Scalar| {
        for r in s.attr_refs() {
            out.push(r.var.clone());
        }
    };
    match p {
        Predicate::Cmp { left, right, .. } => {
            push(left);
            push(right);
        }
        Predicate::IsNull { expr, .. } => push(expr),
    }
    out
}

/// First constant appearing in a predicate (literal-leaf anchor).
fn first_const(p: &Predicate) -> Option<Value> {
    fn walk(s: &arc::Scalar) -> Option<Value> {
        match s {
            arc::Scalar::Const(v) => Some(v.clone()),
            arc::Scalar::Attr(_) => None,
            arc::Scalar::Agg(call) => match &call.arg {
                arc::AggArg::Expr(e) => walk(e),
                arc::AggArg::Star => None,
            },
            arc::Scalar::Arith { left, right, .. } => walk(left).or_else(|| walk(right)),
        }
    }
    match p {
        Predicate::Cmp { left, right, .. } => walk(left).or_else(|| walk(right)),
        Predicate::IsNull { expr, .. } => walk(expr),
    }
}

fn item_name(item: &SelectItem, index: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        SqlExpr::Column { column, .. } => column.clone(),
        SqlExpr::Agg { func, .. } => func.clone(),
        _ => format!("c{}", index + 1),
    }
}

fn contains_agg(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Agg { .. } => true,
        SqlExpr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        SqlExpr::Not(inner) => contains_agg(inner),
        SqlExpr::IsNull { expr, .. } => contains_agg(expr),
        // Aggregates inside subqueries belong to the subquery's scope.
        SqlExpr::Exists { .. } | SqlExpr::InSubquery { .. } | SqlExpr::ScalarSubquery(_) => false,
        SqlExpr::Column { .. } | SqlExpr::Literal(_) => false,
    }
}

fn is_trivially_true(e: &SqlExpr) -> bool {
    matches!(e, SqlExpr::Literal(Value::Bool(true)))
}

fn cmp_op(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        other => unreachable!("not a comparison: {other:?}"),
    }
}
