//! Hand-written lexer and recursive-descent parser for the SQL subset.

use crate::ast::*;
use arc_core::value::Value;
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SqlParseError {}

/// Parse one SQL query (an optional trailing `;` is accepted).
pub fn parse_sql(src: &str) -> Result<SqlQuery, SqlParseError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    p.eat_sym(";");
    if !p.at_eof() {
        return Err(p.err(format!(
            "unexpected trailing input `{}`",
            p.peek_text().unwrap_or_default()
        )));
    }
    Ok(q)
}

// -- Lexer -------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Keyword or identifier (lower-cased keywords matched contextually).
    Word(String),
    /// Quoted identifier `"..."`.
    Quoted(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

#[derive(Debug, Clone)]
struct Sp {
    tok: Tok,
    offset: usize,
}

fn sql_lex(src: &str) -> Result<Vec<Sp>, SqlParseError> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let (offset, c) = chars[i];
        match c {
            c if c.is_whitespace() => {}
            '-' if matches!(chars.get(i + 1), Some((_, '-'))) => {
                while i < chars.len() && chars[i].1 != '\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '.' | ';' | '+' | '*' | '/' | '-' | '=' => {
                let s = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    ';' => ";",
                    '+' => "+",
                    '*' => "*",
                    '/' => "/",
                    '-' => "-",
                    _ => "=",
                };
                out.push(Sp {
                    tok: Tok::Sym(s),
                    offset,
                });
            }
            '<' => {
                let (s, skip) = match chars.get(i + 1) {
                    Some((_, '=')) => ("<=", 1),
                    Some((_, '>')) => ("<>", 1),
                    _ => ("<", 0),
                };
                out.push(Sp {
                    tok: Tok::Sym(s),
                    offset,
                });
                i += skip;
            }
            '>' => {
                let (s, skip) = match chars.get(i + 1) {
                    Some((_, '=')) => (">=", 1),
                    _ => (">", 0),
                };
                out.push(Sp {
                    tok: Tok::Sym(s),
                    offset,
                });
                i += skip;
            }
            '!' if matches!(chars.get(i + 1), Some((_, '='))) => {
                out.push(Sp {
                    tok: Tok::Sym("<>"),
                    offset,
                });
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    if chars[j].1 == '\'' {
                        closed = true;
                        break;
                    }
                    s.push(chars[j].1);
                    j += 1;
                }
                if !closed {
                    return Err(SqlParseError {
                        message: "unterminated string".to_string(),
                        offset,
                    });
                }
                out.push(Sp {
                    tok: Tok::Str(s),
                    offset,
                });
                i = j;
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    if chars[j].1 == '"' {
                        closed = true;
                        break;
                    }
                    s.push(chars[j].1);
                    j += 1;
                }
                if !closed {
                    return Err(SqlParseError {
                        message: "unterminated quoted identifier".to_string(),
                        offset,
                    });
                }
                out.push(Sp {
                    tok: Tok::Quoted(s),
                    offset,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut j = i;
                let mut is_float = false;
                while j < chars.len() {
                    let ch = chars[j].1;
                    if ch.is_ascii_digit() {
                        text.push(ch);
                        j += 1;
                    } else if ch == '.'
                        && !is_float
                        && matches!(chars.get(j + 1), Some((_, d)) if d.is_ascii_digit())
                    {
                        is_float = true;
                        text.push(ch);
                        j += 1;
                    } else {
                        break;
                    }
                }
                let tok = if is_float {
                    Tok::Float(text.parse().unwrap_or(0.0))
                } else {
                    Tok::Int(text.parse().map_err(|_| SqlParseError {
                        message: format!("bad integer `{text}`"),
                        offset,
                    })?)
                };
                out.push(Sp { tok, offset });
                i = j - 1;
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let mut text = String::new();
                let mut j = i;
                while j < chars.len() {
                    let ch = chars[j].1;
                    if ch.is_alphanumeric() || ch == '_' || ch == '$' {
                        text.push(ch);
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Sp {
                    tok: Tok::Word(text),
                    offset,
                });
                i = j - 1;
            }
            other => {
                return Err(SqlParseError {
                    message: format!("unexpected character `{other}`"),
                    offset,
                })
            }
        }
        i += 1;
    }
    Ok(out)
}

// -- Parser ------------------------------------------------------------------

struct Parser {
    toks: Vec<Sp>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, SqlParseError> {
        Ok(Parser {
            toks: sql_lex(src)?,
            pos: 0,
            src_len: src.len(),
        })
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.src_len)
    }

    fn err(&self, message: String) -> SqlParseError {
        SqlParseError {
            message,
            offset: self.offset(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|s| &s.tok)
    }

    fn peek_text(&self) -> Option<String> {
        self.peek().map(|t| match t {
            Tok::Word(w) => w.clone(),
            Tok::Quoted(q) => format!("\"{q}\""),
            Tok::Int(v) => v.to_string(),
            Tok::Float(v) => v.to_string(),
            Tok::Str(s) => format!("'{s}'"),
            Tok::Sym(s) => s.to_string(),
        })
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn peek_kw_at(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{kw}`, found `{}`",
                self.peek_text().unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn peek_sym(&self) -> Option<&'static str> {
        match self.peek() {
            Some(Tok::Sym(s)) => Some(s),
            _ => None,
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym() == Some(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), SqlParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{sym}`, found `{}`",
                self.peek_text().unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    /// An identifier that is not one of the clause keywords.
    fn ident(&mut self) -> Result<String, SqlParseError> {
        match self.peek() {
            Some(Tok::Word(w)) if !is_reserved(w) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            Some(Tok::Quoted(q)) => {
                let q = q.clone();
                self.pos += 1;
                Ok(q)
            }
            _ => Err(self.err(format!(
                "expected identifier, found `{}`",
                self.peek_text().unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn query(&mut self) -> Result<SqlQuery, SqlParseError> {
        let left = SqlQuery::Select(self.select()?);
        if self.eat_kw("union") {
            let all = self.eat_kw("all");
            let right = self.query()?;
            return Ok(SqlQuery::Union {
                left: Box::new(left),
                right: Box::new(right),
                all,
            });
        }
        Ok(left)
    }

    fn select(&mut self) -> Result<Select, SqlParseError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let explicit_as = self.eat_kw("as");
            let alias =
                if explicit_as || matches!(self.peek(), Some(Tok::Word(w)) if !is_reserved(w)) {
                    Some(self.ident()?)
                } else {
                    None
                };
            items.push(SelectItem { expr, alias });
            if !self.eat_sym(",") {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                // `group by ()` / `group by true` = γ∅.
                if self.eat_sym("(") {
                    self.expect_sym(")")?;
                } else if self.eat_kw("true") {
                    // explicit single group
                } else {
                    group_by.push(self.expr()?);
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlParseError> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.peek_kw("join") {
                self.pos += 1;
                JoinKind::Inner
            } else if self.peek_kw("inner") && self.peek_kw_at(1, "join") {
                self.pos += 2;
                JoinKind::Inner
            } else if self.peek_kw("left") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.peek_kw("full") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Full
            } else if self.peek_kw("cross") {
                self.pos += 1;
                self.expect_kw("join")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.table_primary()?;
            let on = if self.eat_kw("on") {
                Some(self.expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableRef, SqlParseError> {
        let lateral = self.eat_kw("lateral");
        if self.peek_sym() == Some("(") {
            if self.peek_kw_at(1, "select") {
                self.pos += 1;
                let query = self.query()?;
                self.expect_sym(")")?;
                self.eat_kw("as");
                let alias = self.ident()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                    lateral,
                });
            }
            // Parenthesized join tree.
            self.pos += 1;
            let inner = self.table_ref()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        if lateral {
            return Err(self.err("LATERAL must be followed by a subquery".to_string()));
        }
        let name = self.ident()?;
        let explicit_as = self.eat_kw("as");
        let alias = if explicit_as || matches!(self.peek(), Some(Tok::Word(w)) if !is_reserved(w)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // -- Expressions (precedence climbing) ------------------------------------

    fn expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        if self.peek_kw("not") && !self.peek_kw_at(1, "exists") {
            self.pos += 1;
            return Ok(SqlExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlExpr, SqlParseError> {
        // (NOT) EXISTS.
        if self.peek_kw("exists") || (self.peek_kw("not") && self.peek_kw_at(1, "exists")) {
            let negated = self.eat_kw("not");
            self.expect_kw("exists")?;
            self.expect_sym("(")?;
            let query = self.query()?;
            self.expect_sym(")")?;
            return Ok(SqlExpr::Exists {
                query: Box::new(query),
                negated,
            });
        }
        let left = self.add_expr()?;
        // IS [NOT] NULL.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN (subquery).
        if self.peek_kw("in") || (self.peek_kw("not") && self.peek_kw_at(1, "in")) {
            let negated = self.eat_kw("not");
            self.expect_kw("in")?;
            self.expect_sym("(")?;
            let query = self.query()?;
            self.expect_sym(")")?;
            return Ok(SqlExpr::InSubquery {
                expr: Box::new(left),
                query: Box::new(query),
                negated,
            });
        }
        let op = match self.peek_sym() {
            Some("=") => BinOp::Eq,
            Some("<>") => BinOp::Ne,
            Some("<") => BinOp::Lt,
            Some("<=") => BinOp::Le,
            Some(">") => BinOp::Gt,
            Some(">=") => BinOp::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.add_expr()?;
        Ok(SqlExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn add_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek_sym() {
                Some("+") => BinOp::Add,
                Some("-") => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek_sym() {
                Some("*") => BinOp::Mul,
                Some("/") => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.atom()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<SqlExpr, SqlParseError> {
        match self.peek().cloned() {
            Some(Tok::Sym("-")) => {
                self.pos += 1;
                match self.atom()? {
                    SqlExpr::Literal(Value::Int(v)) => Ok(SqlExpr::Literal(Value::Int(-v))),
                    SqlExpr::Literal(Value::Float(v)) => Ok(SqlExpr::Literal(Value::Float(-v))),
                    other => Ok(SqlExpr::Binary {
                        op: BinOp::Sub,
                        left: Box::new(SqlExpr::Literal(Value::Int(0))),
                        right: Box::new(other),
                    }),
                }
            }
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Int(v)))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Float(v)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Value::Str(s)))
            }
            Some(Tok::Sym("(")) => {
                // Scalar subquery or parenthesized expression.
                if self.peek_kw_at(1, "select") {
                    self.pos += 1;
                    let q = self.query()?;
                    self.expect_sym(")")?;
                    return Ok(SqlExpr::ScalarSubquery(Box::new(q)));
                }
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Word(w)) => {
                let lower = w.to_ascii_lowercase();
                if lower == "null" {
                    self.pos += 1;
                    return Ok(SqlExpr::Literal(Value::Null));
                }
                if lower == "true" {
                    self.pos += 1;
                    return Ok(SqlExpr::Literal(Value::Bool(true)));
                }
                if lower == "false" {
                    self.pos += 1;
                    return Ok(SqlExpr::Literal(Value::Bool(false)));
                }
                if matches!(lower.as_str(), "sum" | "count" | "avg" | "min" | "max")
                    && self.peek_at(1) == Some(&Tok::Sym("("))
                {
                    self.pos += 2;
                    let distinct = self.eat_kw("distinct");
                    let arg = if self.eat_sym("*") {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect_sym(")")?;
                    return Ok(SqlExpr::Agg {
                        func: lower,
                        arg,
                        distinct,
                    });
                }
                // Column reference: ident or ident.ident.
                let first = self.ident()?;
                if self.eat_sym(".") {
                    let column = self.ident()?;
                    Ok(SqlExpr::Column {
                        table: Some(first),
                        column,
                    })
                } else {
                    Ok(SqlExpr::Column {
                        table: None,
                        column: first,
                    })
                }
            }
            Some(Tok::Quoted(_)) => {
                let first = self.ident()?;
                self.expect_sym(".")?;
                let column = self.ident()?;
                Ok(SqlExpr::Column {
                    table: Some(first),
                    column,
                })
            }
            other => Err(self.err(format!(
                "expected expression, found `{}`",
                other
                    .map(|t| format!("{t:?}"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    matches!(
        word.to_ascii_lowercase().as_str(),
        "select"
            | "distinct"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "union"
            | "all"
            | "as"
            | "join"
            | "inner"
            | "left"
            | "full"
            | "cross"
            | "outer"
            | "lateral"
            | "on"
            | "and"
            | "or"
            | "not"
            | "exists"
            | "in"
            | "is"
            | "null"
            | "true"
            | "false"
    )
}
