//! ARC → SQL rendering (the other half of the paper's §5 translator).
//!
//! Renders a collection as a SELECT block per disjunct (UNION/UNION ALL
//! across disjuncts, per the active semantics convention), with:
//!
//! * assignment predicates → the SELECT list;
//! * named bindings → FROM items, nested collections → `JOIN LATERAL … ON
//!   true` (§2.4/§2.12);
//! * grouping scopes → GROUP BY, aggregation tests → HAVING;
//! * join annotations → JOIN syntax, re-deriving each outer node's ON
//!   condition with the same predicate-association rule the engine uses
//!   (predicates that touch the right side, or compare against a literal
//!   leaf of the right side — Fig 12);
//! * negated/positive nested quantifiers → `NOT EXISTS` / `EXISTS`
//!   subqueries (Fig 17 style);
//! * boolean sentences → `SELECT EXISTS(…)` (Fig 9).
//!
//! The output stays within the subset `crate::parser` accepts, so
//! `lower(render(q))` round-trips (tested by execution equivalence).

use arc_core::ast::*;
use arc_core::conventions::{Conventions, Semantics};
use std::collections::HashSet;
use std::fmt;

/// Rendering error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum RenderError {
    /// A head attribute has no assignment in some disjunct.
    MissingAssignment { attr: String },
    /// The collection uses a feature with no SQL counterpart in the subset.
    Unsupported(String),
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::MissingAssignment { attr } => {
                write!(f, "no assignment for head attribute `{attr}`")
            }
            RenderError::Unsupported(msg) => write!(f, "cannot render to SQL: {msg}"),
        }
    }
}

impl std::error::Error for RenderError {}

/// Render a collection to SQL under the given conventions (set semantics ⇒
/// `SELECT DISTINCT` + `UNION`; bag ⇒ plain + `UNION ALL`).
pub fn render_collection(c: &Collection, conv: &Conventions) -> Result<String, RenderError> {
    let distinct = conv.semantics == Semantics::Set;
    let mut blocks = Vec::new();
    for branch in disjuncts(&c.body) {
        blocks.push(render_branch(branch, &c.head, distinct)?);
    }
    let sep = if distinct {
        "\nunion\n"
    } else {
        "\nunion all\n"
    };
    Ok(blocks.join(sep))
}

/// Render a boolean sentence as `SELECT <boolean>` (Fig 9's
/// `select [not] exists (…)` shape).
pub fn render_sentence(f: &Formula, _conv: &Conventions) -> Result<String, RenderError> {
    Ok(format!("select {}", bool_expr(f)?))
}

fn disjuncts(f: &Formula) -> Vec<&Formula> {
    match f {
        Formula::Or(fs) if !fs.is_empty() => fs.iter().flat_map(disjuncts).collect(),
        other => vec![other],
    }
}

fn render_branch(f: &Formula, head: &Head, distinct: bool) -> Result<String, RenderError> {
    let (bindings, grouping, join, body): (
        &[Binding],
        Option<&Grouping>,
        Option<&JoinTree>,
        &Formula,
    ) = match f {
        Formula::Quant(q) => (&q.bindings, q.grouping.as_ref(), q.join.as_ref(), &q.body),
        other => (&[], None, None, other),
    };
    let parts = classify(body, &head.relation);
    if !parts.spines.is_empty() {
        return Err(RenderError::Unsupported(
            "assignment-bearing nested scopes (unnest before rendering)".into(),
        ));
    }

    // SELECT list, in head-attribute order.
    let mut select_items = Vec::with_capacity(head.attrs.len());
    for attr in &head.attrs {
        let expr = parts
            .assigns
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, e)| *e)
            .ok_or_else(|| RenderError::MissingAssignment { attr: attr.clone() })?;
        select_items.push(format!("{} as {}", scalar(expr)?, quote(attr)));
    }
    let distinct_kw = if distinct { "distinct " } else { "" };

    let (from_sql, where_from_join) = render_from(&parts, bindings, join)?;

    let mut where_parts: Vec<String> = Vec::new();
    for (i, p) in parts.filters.iter().enumerate() {
        if where_from_join.contains(&i) {
            continue;
        }
        where_parts.push(pred(p)?);
    }
    for b in &parts.pre_bool {
        where_parts.push(bool_expr(b)?);
    }

    let mut sql = format!("select {distinct_kw}{}", select_items.join(", "));
    if !from_sql.is_empty() {
        sql.push_str(&format!("\nfrom {from_sql}"));
    }
    if !where_parts.is_empty() {
        sql.push_str(&format!("\nwhere {}", where_parts.join(" and ")));
    }
    match grouping {
        Some(g) if !g.keys.is_empty() => {
            let keys: Vec<String> = g.keys.iter().map(attr_sql).collect();
            sql.push_str(&format!("\ngroup by {}", keys.join(", ")));
        }
        Some(_) if !parts.has_aggregate() => {
            // γ∅ without aggregates still needs an explicit single group.
            sql.push_str("\ngroup by true");
        }
        _ => {}
    }
    let mut having_parts: Vec<String> = Vec::new();
    for p in &parts.agg_tests {
        having_parts.push(pred(p)?);
    }
    for b in &parts.post_bool {
        having_parts.push(bool_expr(b)?);
    }
    if !having_parts.is_empty() {
        sql.push_str(&format!("\nhaving {}", having_parts.join(" and ")));
    }
    Ok(sql)
}

/// Render the FROM clause; returns the SQL plus the indices of filter
/// predicates consumed as ON conditions of outer joins.
fn render_from(
    parts: &Parts<'_>,
    bindings: &[Binding],
    join: Option<&JoinTree>,
) -> Result<(String, HashSet<usize>), RenderError> {
    let mut consumed = HashSet::new();
    match join {
        Some(tree) if tree.has_outer() => {
            let by_var: std::collections::HashMap<&str, &Binding> =
                bindings.iter().map(|b| (b.var.as_str(), b)).collect();
            let mut lit_counter = 0usize;
            let sql = join_tree_sql(tree, &by_var, parts, &mut consumed, &mut lit_counter)?;
            Ok((sql, consumed))
        }
        _ => {
            // Chain: first item plain, named sources via CROSS JOIN, nested
            // collections via JOIN LATERAL ON true.
            let mut out = String::new();
            for (i, b) in bindings.iter().enumerate() {
                match &b.source {
                    BindingSource::Named(rel) => {
                        if i == 0 {
                            out.push_str(&format!("{} {}", quote(rel), quote(&b.var)));
                        } else {
                            out.push_str(&format!(" cross join {} {}", quote(rel), quote(&b.var)));
                        }
                    }
                    BindingSource::Collection(c) => {
                        let sub = render_collection_inline(c)?;
                        if i == 0 {
                            out.push_str(&format!("lateral ({sub}) as {}", quote(&b.var)));
                        } else {
                            out.push_str(&format!(
                                " join lateral ({sub}) as {} on true",
                                quote(&b.var)
                            ));
                        }
                    }
                }
            }
            Ok((out, consumed))
        }
    }
}

fn render_collection_inline(c: &Collection) -> Result<String, RenderError> {
    // Nested collections render under bag semantics; the outer context's
    // semantics convention applies at the boundary anyway.
    render_collection(c, &Conventions::sql()).map(|s| s.replace('\n', " "))
}

fn join_tree_sql(
    tree: &JoinTree,
    by_var: &std::collections::HashMap<&str, &Binding>,
    parts: &Parts<'_>,
    consumed: &mut HashSet<usize>,
    lit_counter: &mut usize,
) -> Result<String, RenderError> {
    match tree {
        JoinTree::Var(v) => {
            let b = by_var
                .get(v.as_str())
                .ok_or_else(|| RenderError::Unsupported(format!("join var `{v}` unbound")))?;
            match &b.source {
                BindingSource::Named(rel) => Ok(format!("{} {}", quote(rel), quote(v))),
                BindingSource::Collection(c) => {
                    let sub = render_collection_inline(c)?;
                    Ok(format!("lateral ({sub}) as {}", quote(v)))
                }
            }
        }
        JoinTree::Lit(val) => {
            *lit_counter += 1;
            Ok(format!("(select {val} as v) as lit{lit_counter}"))
        }
        JoinTree::Inner(children) => {
            let rendered: Result<Vec<String>, RenderError> = children
                .iter()
                .map(|c| join_tree_sql(c, by_var, parts, consumed, lit_counter))
                .collect();
            Ok(rendered?.join(" cross join "))
        }
        JoinTree::Left(l, r) | JoinTree::Full(l, r) => {
            let kw = if matches!(tree, JoinTree::Left(..)) {
                "left join"
            } else {
                "full join"
            };
            let lsql = join_tree_sql(l, by_var, parts, consumed, lit_counter)?;
            let rsql = join_tree_sql(r, by_var, parts, consumed, lit_counter)?;
            let on = select_on(l, r, parts, consumed)?;
            let on_sql = if on.is_empty() {
                "true".to_string()
            } else {
                on.join(" and ")
            };
            // Parenthesize composite right sides.
            let rsql = if matches!(
                **r,
                JoinTree::Inner(_) | JoinTree::Left(..) | JoinTree::Full(..)
            ) {
                format!("({rsql})")
            } else {
                rsql
            };
            Ok(format!("{lsql} {kw} {rsql} on {on_sql}"))
        }
    }
}

/// The engine's ON-association rule, mirrored for rendering: a filter is an
/// ON condition of this outer node when its variables are covered by both
/// sides and it touches the right side (or compares against a right-side
/// literal leaf).
fn select_on(
    l: &JoinTree,
    r: &JoinTree,
    parts: &Parts<'_>,
    consumed: &mut HashSet<usize>,
) -> Result<Vec<String>, RenderError> {
    let lvars: HashSet<&str> = l.vars().into_iter().collect();
    let rvars: HashSet<&str> = r.vars().into_iter().collect();
    let rlits = collect_lits(r);
    let mut out = Vec::new();
    for (i, p) in parts.filters.iter().enumerate() {
        if consumed.contains(&i) {
            continue;
        }
        let vars = pred_vars(p);
        let covered = vars
            .iter()
            .all(|v| lvars.contains(v.as_str()) || rvars.contains(v.as_str()));
        if !covered {
            continue;
        }
        let touches_right = vars.iter().any(|v| rvars.contains(v.as_str()));
        let touches_lit = !rlits.is_empty() && pred_consts(p).iter().any(|c| rlits.contains(c));
        if touches_right || touches_lit {
            consumed.insert(i);
            out.push(pred(p)?);
        }
    }
    Ok(out)
}

fn pred_vars(p: &Predicate) -> Vec<String> {
    let mut out = Vec::new();
    let mut push_scalar = |s: &Scalar| {
        for r in s.attr_refs() {
            out.push(r.var.clone());
        }
    };
    match p {
        Predicate::Cmp { left, right, .. } => {
            push_scalar(left);
            push_scalar(right);
        }
        Predicate::IsNull { expr, .. } => push_scalar(expr),
    }
    out
}

fn pred_consts(p: &Predicate) -> Vec<arc_core::value::Value> {
    fn walk(s: &Scalar, out: &mut Vec<arc_core::value::Value>) {
        match s {
            Scalar::Const(v) => out.push(v.clone()),
            Scalar::Attr(_) => {}
            Scalar::Agg(call) => {
                if let AggArg::Expr(e) = &call.arg {
                    walk(e, out);
                }
            }
            Scalar::Arith { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    match p {
        Predicate::Cmp { left, right, .. } => {
            walk(left, &mut out);
            walk(right, &mut out);
        }
        Predicate::IsNull { expr, .. } => walk(expr, &mut out),
    }
    out
}

fn collect_lits(t: &JoinTree) -> Vec<arc_core::value::Value> {
    match t {
        JoinTree::Var(_) => Vec::new(),
        JoinTree::Lit(v) => vec![v.clone()],
        JoinTree::Inner(children) => children.iter().flat_map(collect_lits).collect(),
        JoinTree::Left(l, r) | JoinTree::Full(l, r) => {
            let mut out = collect_lits(l);
            out.extend(collect_lits(r));
            out
        }
    }
}

// -- Body classification (rendering mirror of the engine's partition) --------

struct Parts<'f> {
    filters: Vec<&'f Predicate>,
    assigns: Vec<(String, &'f Scalar)>,
    agg_tests: Vec<&'f Predicate>,
    pre_bool: Vec<&'f Formula>,
    post_bool: Vec<&'f Formula>,
    spines: Vec<&'f Formula>,
}

impl Parts<'_> {
    fn has_aggregate(&self) -> bool {
        self.assigns.iter().any(|(_, e)| e.has_aggregate())
            || !self.agg_tests.is_empty()
            || !self.post_bool.is_empty()
    }
}

fn classify<'f>(body: &'f Formula, head: &str) -> Parts<'f> {
    let mut parts = Parts {
        filters: Vec::new(),
        assigns: Vec::new(),
        agg_tests: Vec::new(),
        pre_bool: Vec::new(),
        post_bool: Vec::new(),
        spines: Vec::new(),
    };
    for conjunct in body.conjuncts() {
        match conjunct {
            Formula::Pred(p) => {
                if let Some((attr, expr)) = head_assignment(p, head) {
                    parts.assigns.push((attr.to_string(), expr));
                } else if p.has_aggregate() {
                    parts.agg_tests.push(p);
                } else {
                    parts.filters.push(p);
                }
            }
            sub => {
                if has_head_assignment(sub, head) {
                    parts.spines.push(sub);
                } else if has_direct_aggregate(sub) {
                    parts.post_bool.push(sub);
                } else {
                    parts.pre_bool.push(sub);
                }
            }
        }
    }
    parts
}

fn head_assignment<'f>(p: &'f Predicate, head: &str) -> Option<(&'f str, &'f Scalar)> {
    if let Predicate::Cmp {
        left,
        op: CmpOp::Eq,
        right,
    } = p
    {
        let is_head = |s: &'f Scalar| -> Option<&'f str> {
            match s {
                Scalar::Attr(a) if a.var == head => Some(a.attr.as_str()),
                _ => None,
            }
        };
        match (is_head(left), is_head(right)) {
            (Some(attr), None) => return Some((attr, right)),
            (None, Some(attr)) => return Some((attr, left)),
            _ => {}
        }
    }
    None
}

fn has_head_assignment(f: &Formula, head: &str) -> bool {
    match f {
        Formula::Pred(p) => head_assignment(p, head).is_some(),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|s| has_head_assignment(s, head)),
        Formula::Not(_) => false,
        Formula::Quant(q) => has_head_assignment(&q.body, head),
    }
}

fn has_direct_aggregate(f: &Formula) -> bool {
    match f {
        Formula::Pred(p) => p.has_aggregate(),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_direct_aggregate),
        Formula::Not(inner) => has_direct_aggregate(inner),
        Formula::Quant(_) => false,
    }
}

// -- Expression rendering -----------------------------------------------------

fn bool_expr(f: &Formula) -> Result<String, RenderError> {
    match f {
        Formula::Pred(p) => pred(p),
        Formula::And(fs) => {
            if fs.is_empty() {
                return Ok("true".to_string());
            }
            let parts: Result<Vec<String>, _> = fs.iter().map(bool_expr).collect();
            Ok(format!("({})", parts?.join(" and ")))
        }
        Formula::Or(fs) => {
            if fs.is_empty() {
                return Ok("false".to_string());
            }
            let parts: Result<Vec<String>, _> = fs.iter().map(bool_expr).collect();
            Ok(format!("({})", parts?.join(" or ")))
        }
        Formula::Not(inner) => match &**inner {
            Formula::Quant(q) => Ok(format!("not exists ({})", exists_block(q)?)),
            other => Ok(format!("not {}", bool_expr(other)?)),
        },
        Formula::Quant(q) => Ok(format!("exists ({})", exists_block(q)?)),
    }
}

/// Render a boolean quantifier as `select 1 from … where … [group by …]
/// [having …]`.
fn exists_block(q: &Quant) -> Result<String, RenderError> {
    let parts = classify(&q.body, "\u{0}");
    let (from_sql, consumed) = render_from(&parts, &q.bindings, q.join.as_ref())?;
    let mut sql = "select 1".to_string();
    if !from_sql.is_empty() {
        sql.push_str(&format!(" from {from_sql}"));
    }
    let mut where_parts = Vec::new();
    for (i, p) in parts.filters.iter().enumerate() {
        if consumed.contains(&i) {
            continue;
        }
        where_parts.push(pred(p)?);
    }
    for b in &parts.pre_bool {
        where_parts.push(bool_expr(b)?);
    }
    if !where_parts.is_empty() {
        sql.push_str(&format!(" where {}", where_parts.join(" and ")));
    }
    if let Some(g) = &q.grouping {
        if !g.keys.is_empty() {
            let keys: Vec<String> = g.keys.iter().map(attr_sql).collect();
            sql.push_str(&format!(" group by {}", keys.join(", ")));
        }
    }
    let mut having = Vec::new();
    for p in &parts.agg_tests {
        having.push(pred(p)?);
    }
    for b in &parts.post_bool {
        having.push(bool_expr(b)?);
    }
    if !having.is_empty() {
        sql.push_str(&format!(" having {}", having.join(" and ")));
    }
    Ok(sql)
}

fn pred(p: &Predicate) -> Result<String, RenderError> {
    match p {
        Predicate::Cmp { left, op, right } => Ok(format!(
            "{} {} {}",
            scalar(left)?,
            op.symbol(),
            scalar(right)?
        )),
        Predicate::IsNull { expr, negated } => Ok(format!(
            "{} is {}null",
            scalar(expr)?,
            if *negated { "not " } else { "" }
        )),
    }
}

fn scalar(s: &Scalar) -> Result<String, RenderError> {
    match s {
        Scalar::Attr(a) => Ok(attr_sql(a)),
        Scalar::Const(v) => Ok(v.to_string()),
        Scalar::Agg(call) => {
            let d = if call.distinct { "distinct " } else { "" };
            match &call.arg {
                AggArg::Expr(e) => Ok(format!("{}({d}{})", call.func.name(), scalar(e)?)),
                AggArg::Star => Ok(format!("{}({d}*)", call.func.name())),
            }
        }
        Scalar::Arith { op, left, right } => {
            let l = scalar(left)?;
            let r = scalar(right)?;
            let wrap = |s: String, sub: &Scalar| -> String {
                if matches!(sub, Scalar::Arith { .. }) {
                    format!("({s})")
                } else {
                    s
                }
            };
            Ok(format!(
                "{} {} {}",
                wrap(l, left),
                op.symbol(),
                wrap(r, right)
            ))
        }
    }
}

fn attr_sql(a: &AttrRef) -> String {
    format!("{}.{}", quote(&a.var), quote(&a.attr))
}

/// Quote identifiers that are not plain SQL names.
fn quote(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_alphabetic() || c == '_')
            .unwrap_or(false)
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '$')
        && !crate::parser_reserved(name);
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}
