//! End-to-end tests: every SQL query printed in the paper is parsed,
//! lowered to ARC, executed by the engine, and checked against the figure's
//! claim. Round-trips (`lower ∘ render`) are verified by execution
//! equivalence.

use arc_core::binder::{Binder, SchemaMap};
use arc_core::conventions::Conventions;
use arc_core::pattern::signature;
use arc_core::value::Value;
use arc_engine::{Catalog, Engine, Relation};
use arc_sql::{arc_to_sql, sql_to_arc};

fn schemas_of(catalog: &Catalog) -> SchemaMap {
    catalog.schema_map()
}

fn run(catalog: &Catalog, sql: &str, conv: Conventions) -> Relation {
    let arc = sql_to_arc(sql, &schemas_of(catalog)).unwrap_or_else(|e| panic!("lower: {e}\n{sql}"));
    let bound = Binder::with_schemas(schemas_of(catalog)).bind_collection(&arc);
    assert!(
        bound.is_valid(),
        "binder rejected lowered query: {:?}\n{sql}",
        bound.diagnostics
    );
    Engine::new(catalog, conv)
        .eval_collection(&arc)
        .unwrap_or_else(|e| panic!("eval: {e}\n{sql}"))
}

fn round_trip(catalog: &Catalog, sql: &str, conv: Conventions) {
    let arc = sql_to_arc(sql, &schemas_of(catalog)).unwrap();
    let rendered = arc_to_sql(&arc, &conv).unwrap_or_else(|e| panic!("render: {e}"));
    let arc2 = sql_to_arc(&rendered, &schemas_of(catalog))
        .unwrap_or_else(|e| panic!("re-lower failed: {e}\nrendered SQL:\n{rendered}"));
    let engine = Engine::new(catalog, conv);
    let a = engine.eval_collection(&arc).unwrap();
    let b = engine
        .eval_collection(&arc2)
        .unwrap_or_else(|e| panic!("re-eval: {e}\nrendered SQL:\n{rendered}"));
    assert!(
        a.bag_eq(&b),
        "round-trip changed results\noriginal SQL:\n{sql}\nrendered SQL:\n{rendered}\n{a}\nvs\n{b}"
    );
}

fn ints(name: &str, schema: &[&str], rows: &[&[i64]]) -> Relation {
    Relation::from_ints(name, schema, rows)
}

fn row(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|v| Value::Int(*v)).collect()
}

// ---------------------------------------------------------------------------

fn r_ab() -> Catalog {
    Catalog::new().with(ints("R", &["A", "B"], &[&[1, 10], &[1, 20], &[2, 5]]))
}

#[test]
fn fig4a_grouped_aggregate() {
    let out = run(
        &r_ab(),
        "select R.A, sum(R.B) sm from R group by R.A",
        Conventions::sql(),
    );
    assert_eq!(out.sorted_rows(), vec![row(&[1, 30]), row(&[2, 5])]);
}

#[test]
fn fig5a_scalar_subquery_equals_fig5b_lateral() {
    let catalog = r_ab();
    let a = run(
        &catalog,
        "select distinct R.A, (select sum(R2.B) from R R2 where R2.A = R.A) sm from R",
        Conventions::sql(),
    );
    let b = run(
        &catalog,
        "select distinct R.A, X.sm from R join lateral \
         (select sum(R2.B) sm from R R2 where R2.A = R.A) X on true",
        Conventions::sql(),
    );
    assert!(a.bag_eq(&b), "{a}\nvs\n{b}");
    assert_eq!(a.sorted_rows(), vec![row(&[1, 30]), row(&[2, 5])]);
}

#[test]
fn fig3a_lateral_join() {
    let catalog = Catalog::new()
        .with(ints("X", &["A"], &[&[1], &[2]]))
        .with(ints("Y", &["A"], &[&[2], &[3]]));
    let out = run(
        &catalog,
        "select x.A, z.B from X as x join lateral \
         (select y.A as B from Y as y where x.A < y.A) as z on true",
        Conventions::sql(),
    );
    assert_eq!(
        out.sorted_rows(),
        vec![row(&[1, 2]), row(&[1, 3]), row(&[2, 3])]
    );
}

fn dept_catalog() -> Catalog {
    Catalog::new()
        .with(ints("R", &["empl", "dept"], &[&[1, 1], &[2, 1], &[3, 2]]))
        .with(ints("S", &["empl", "sal"], &[&[1, 50], &[2, 60], &[3, 40]]))
}

#[test]
fn fig6a_multiple_aggregates_with_having() {
    let out = run(
        &dept_catalog(),
        "select R.dept, avg(S.sal) av from R, S \
         where R.empl = S.empl group by R.dept having sum(S.sal) > 100",
        Conventions::sql(),
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(1));
    assert_eq!(out.rows[0][1], Value::Float(55.0));
}

#[test]
fn fig11a_not_in_with_nulls() {
    let mut s = Relation::new("S", &["A"]);
    s.push(vec![Value::Int(1)]);
    s.push(vec![Value::Null]);
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[1], &[3]]))
        .with(s);
    let not_in = run(
        &catalog,
        "select R.A from R where R.A not in (select S.A from S)",
        Conventions::sql(),
    );
    assert!(
        not_in.is_empty(),
        "NOT IN with NULLs must be empty: {not_in}"
    );

    // Fig 11b: the explicit NOT EXISTS formulation is pattern-identical.
    let guarded = sql_to_arc(
        "select R.A from R where not exists \
         (select 1 from S where S.A = R.A or S.A is null or R.A is null)",
        &schemas_of(&catalog),
    )
    .unwrap();
    let lowered_not_in = sql_to_arc(
        "select R.A from R where R.A not in (select S.A from S)",
        &schemas_of(&catalog),
    )
    .unwrap();
    assert_eq!(
        signature(&lowered_not_in).canon,
        signature(&guarded).canon,
        "NOT IN must lower to the Fig 11b pattern"
    );
}

#[test]
fn fig12_left_outer_join_with_condition() {
    let catalog = Catalog::new()
        .with(ints("R", &["m", "y", "h"], &[&[1, 10, 11], &[2, 20, 99]]))
        .with(ints("S", &["y", "n", "q"], &[&[10, 5, 0], &[30, 6, 0]]));
    let out = run(
        &catalog,
        "select r.m, s.n from R r left outer join S s on (r.h = 11 and r.y = s.y)",
        Conventions::sql(),
    );
    let rows = out.sorted_rows();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Value::Int(1), Value::Int(5)]);
    assert_eq!(rows[1], vec![Value::Int(2), Value::Null]);
}

fn fig13_catalog(dup: bool) -> Catalog {
    let r: &[&[i64]] = if dup {
        &[&[3], &[3], &[5]]
    } else {
        &[&[3], &[5]]
    };
    Catalog::new().with(ints("R", &["A"], r)).with(ints(
        "S",
        &["A", "B"],
        &[&[1, 10], &[2, 20], &[4, 40]],
    ))
}

#[test]
fn fig13_scalar_equals_lateral_even_with_duplicates() {
    for dup in [false, true] {
        let catalog = fig13_catalog(dup);
        let scalar = run(
            &catalog,
            "select R.A, (select sum(S.B) sm from S where S.A < R.A) from R",
            Conventions::sql(),
        );
        let lateral = run(
            &catalog,
            "select R.A, X.sm from R join lateral \
             (select sum(S.B) sm from S where S.A < R.A) X on true",
            Conventions::sql(),
        );
        assert!(
            scalar.bag_eq(&lateral),
            "dup={dup}\n{scalar}\nvs\n{lateral}"
        );
    }
}

#[test]
fn fig13c_left_join_group_by_is_wrong_under_duplicates() {
    let catalog = fig13_catalog(true);
    let lateral = run(
        &catalog,
        "select R.A, X.sm from R join lateral \
         (select sum(S.B) sm from S where S.A < R.A) X on true",
        Conventions::sql(),
    );
    let leftjoin = run(
        &catalog,
        "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A",
        Conventions::sql(),
    );
    assert!(!lateral.bag_eq(&leftjoin));
    assert_eq!(leftjoin.sorted_rows(), vec![row(&[3, 60]), row(&[5, 70])]);
    assert_eq!(
        lateral.sorted_rows(),
        vec![row(&[3, 30]), row(&[3, 30]), row(&[5, 70])]
    );
}

fn count_bug_catalog() -> Catalog {
    Catalog::new()
        .with(ints("R", &["id", "q"], &[&[9, 0]]))
        .with(ints("S", &["id", "d"], &[]))
}

#[test]
fn fig21_count_bug_sql_versions() {
    let catalog = count_bug_catalog();
    let v1 = run(
        &catalog,
        "select R.id from R where R.q = (select count(S.d) from S where S.id = R.id)",
        Conventions::sql(),
    );
    assert_eq!(v1.sorted_rows(), vec![row(&[9])]);

    let v2 = run(
        &catalog,
        "select R.id from R, (select S.id, count(S.d) as ct from S group by S.id) as X \
         where R.q = X.ct and R.id = X.id",
        Conventions::sql(),
    );
    assert!(v2.is_empty(), "version 2 exhibits the count bug");

    let v3 = run(
        &catalog,
        "select R.id from R, (select R2.id, count(S.d) as ct from R R2 left join S \
         on R2.id = S.id group by R2.id) as X where R.q = X.ct and R.id = X.id",
        Conventions::sql(),
    );
    assert_eq!(v3.sorted_rows(), vec![row(&[9])]);
}

#[test]
fn fig15a_arithmetic_predicates() {
    let catalog = Catalog::new()
        .with(ints("R", &["A", "B"], &[&[1, 10], &[2, 5]]))
        .with(ints("S", &["B"], &[&[3]]))
        .with(ints("T", &["B"], &[&[5]]));
    let out = run(
        &catalog,
        "select R.A from R, S, T where R.B - S.B > T.B",
        Conventions::sql(),
    );
    assert_eq!(out.sorted_rows(), vec![row(&[1])]);
}

#[test]
fn fig17_unique_set_query() {
    let mut l = Relation::new("Likes", &["drinker", "beer"]);
    for (d, b) in [("a", 1), ("a", 2), ("b", 1), ("c", 1), ("c", 2)] {
        l.push(vec![Value::str(d), Value::Int(b)]);
    }
    let catalog = Catalog::new().with(l);
    let out = run(
        &catalog,
        "select distinct L1.drinker from Likes L1 where not exists \
         (select 1 from Likes L2 where L1.drinker <> L2.drinker \
          and not exists (select 1 from Likes L3 where L3.drinker = L2.drinker \
            and not exists (select 1 from Likes L4 where L4.drinker = L1.drinker \
              and L4.beer = L3.beer)) \
          and not exists (select 1 from Likes L5 where L5.drinker = L1.drinker \
            and not exists (select 1 from Likes L6 where L6.drinker = L2.drinker \
              and L6.beer = L5.beer)))",
        Conventions::sql(),
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::str("b"));
}

#[test]
fn union_vs_union_all() {
    let catalog =
        Catalog::new()
            .with(ints("R", &["A"], &[&[1]]))
            .with(ints("S", &["A"], &[&[1], &[2]]));
    let all = run(
        &catalog,
        "select R.A from R union all select S.A from S",
        Conventions::sql(),
    );
    assert_eq!(all.len(), 3);
    let distinct = run(
        &catalog,
        "select R.A from R union select S.A from S",
        Conventions::sql(),
    );
    assert_eq!(distinct.sorted_rows(), vec![row(&[1]), row(&[2])]);
}

#[test]
fn select_distinct_deduplicates() {
    let catalog = Catalog::new().with(ints("R", &["A", "B"], &[&[1, 2], &[1, 2], &[3, 4]]));
    let out = run(
        &catalog,
        "select distinct R.A, R.B from R",
        Conventions::sql(),
    );
    assert_eq!(out.sorted_rows(), vec![row(&[1, 2]), row(&[3, 4])]);
}

#[test]
fn unqualified_columns_resolve() {
    let catalog = dept_catalog();
    let out = run(
        &catalog,
        "select dept, sal from R, S where R.empl = S.empl and sal > 55",
        Conventions::sql(),
    );
    assert_eq!(out.sorted_rows(), vec![row(&[1, 60])]);
}

#[test]
fn ambiguous_column_rejected() {
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[1]]))
        .with(ints("S", &["A"], &[&[1]]));
    let err = sql_to_arc("select A from R, S", &schemas_of(&catalog)).unwrap_err();
    assert!(err.to_string().contains("ambiguous"));
}

#[test]
fn in_subquery_positive() {
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[1], &[3]]))
        .with(ints("S", &["A"], &[&[1]]));
    let out = run(
        &catalog,
        "select R.A from R where R.A in (select S.A from S)",
        Conventions::sql(),
    );
    assert_eq!(out.sorted_rows(), vec![row(&[1])]);
}

#[test]
fn exists_with_aggregate_item_is_true_on_empty_input() {
    // SQL quirk: EXISTS(SELECT count(*) FROM empty) is TRUE — the aggregate
    // query always produces one row. The lowering preserves this via γ∅.
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[7]]))
        .with(ints("S", &["A"], &[]));
    let out = run(
        &catalog,
        "select R.A from R where exists (select count(S.A) from S)",
        Conventions::sql(),
    );
    assert_eq!(out.sorted_rows(), vec![row(&[7])]);
}

// ---------------------------------------------------------------------------
// Round-trips: lower ∘ render preserves results.
// ---------------------------------------------------------------------------

#[test]
fn round_trips_preserve_execution() {
    let catalog = r_ab();
    for sql in [
        "select R.A, sum(R.B) sm from R group by R.A",
        "select R.A, R.B from R where R.B > 5",
        "select distinct R.A from R",
        "select R.A from R union all select R.B from R",
        "select R.A from R where R.A in (select R2.B from R R2)",
        "select R.A from R where not exists (select 1 from R R2 where R2.B < R.B)",
        "select R.A, X.sm from R join lateral \
         (select sum(R2.B) sm from R R2 where R2.A = R.A) X on true",
    ] {
        round_trip(&catalog, sql, Conventions::sql());
    }
}

#[test]
fn round_trip_outer_join() {
    let catalog = Catalog::new()
        .with(ints("R", &["m", "y", "h"], &[&[1, 10, 11], &[2, 20, 99]]))
        .with(ints("S", &["y", "n", "q"], &[&[10, 5, 0], &[30, 6, 0]]));
    round_trip(
        &catalog,
        "select r.m, s.n from R r left outer join S s on (r.h = 11 and r.y = s.y)",
        Conventions::sql(),
    );
}

#[test]
fn round_trip_count_bug_versions() {
    let catalog = count_bug_catalog();
    for sql in [
        "select R.id from R where R.q = (select count(S.d) from S where S.id = R.id)",
        "select R.id from R, (select S.id, count(S.d) as ct from S group by S.id) as X \
         where R.q = X.ct and R.id = X.id",
    ] {
        round_trip(&catalog, sql, Conventions::sql());
    }
}
