//! Per-column statistics and the selectivity formulas over them.

use crate::histogram::Histogram;
use arc_core::ast::CmpOp;
use arc_core::value::{Key, Value};

/// Default fraction assumed for an ordering comparison when no histogram
/// exists (the classic "one third" planner guess). Public because the
/// planner's index-range gate is calibrated against it: a bound that can
/// only claim the default guess is, by design, never selective enough to
/// justify an ordered-index walk.
pub const DEFAULT_INEQ_FRACTION: f64 = 1.0 / 3.0;

/// Statistics of one column of one relation.
///
/// "Null" here means *never joinable*: values whose
/// [`Value::join_key`] is `None` (`NULL` and float `NaN`), matching the
/// executor's hash-index rule. All counts are scaled to the full relation
/// (the ANALYZE pass may have sampled).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Total rows of the relation (including nulls).
    pub rows: u64,
    /// Rows whose value can never satisfy an equality (`NULL`, `NaN`).
    pub nulls: u64,
    /// Estimated distinct join keys (register sketch, or exact when the
    /// ANALYZE pass saw every row).
    pub distinct: u64,
    /// Smallest non-null key, when any.
    pub min: Option<Key>,
    /// Largest non-null key, when any.
    pub max: Option<Key>,
    /// Most common values with their (scaled) occurrence counts, most
    /// frequent first. Only above-average-frequency values are kept, so a
    /// unique column has an empty list.
    pub mcv: Vec<(Key, u64)>,
    /// Equi-depth histogram over the non-null values, when any.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Fraction of rows that can participate in an equality at all.
    pub fn non_null_fraction(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        (self.rows - self.nulls) as f64 / self.rows as f64
    }

    /// Estimated fraction of rows satisfying `column = value`.
    ///
    /// MCV-aware: a value on the most-common list answers with its
    /// measured frequency; anything else divides the *remaining* rows by
    /// the *remaining* distinct count — so one hot value no longer drags
    /// the estimate for every other value up with it (the failure mode of
    /// uniform `1/distinct`).
    pub fn eq_selectivity(&self, value: &Value) -> f64 {
        let Some(key) = value.join_key() else {
            return 0.0; // NULL/NaN constants match nothing
        };
        if self.rows == 0 || self.rows == self.nulls {
            return 0.0;
        }
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            if &key < min || &key > max {
                return 0.0;
            }
        }
        if let Some((_, count)) = self.mcv.iter().find(|(k, _)| k == &key) {
            return (*count as f64 / self.rows as f64).clamp(0.0, 1.0);
        }
        let mcv_rows: u64 = self.mcv.iter().map(|(_, c)| c).sum();
        let rest_rows = (self.rows - self.nulls).saturating_sub(mcv_rows);
        let rest_distinct = self.distinct.saturating_sub(self.mcv.len() as u64);
        if rest_distinct == 0 || rest_rows == 0 {
            // Every value the column holds is on the MCV list; an absent
            // probe matches (nearly) nothing.
            return 0.0;
        }
        (rest_rows as f64 / rest_distinct as f64 / self.rows as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows satisfying `column op value`.
    ///
    /// Equality goes through the MCV list, ordering comparisons through
    /// the histogram (scaled by the non-null fraction: a comparison with
    /// any constant rejects null rows under three-valued logic).
    pub fn cmp_selectivity(&self, op: CmpOp, value: &Value) -> f64 {
        match op {
            CmpOp::Eq => self.eq_selectivity(value),
            CmpOp::Ne => {
                if value.join_key().is_none() {
                    // Three-valued logic: `x <> NULL` (or NaN) is Unknown
                    // for every row — nothing passes, same as the other
                    // comparisons against an unmatchable constant.
                    return 0.0;
                }
                (self.non_null_fraction() - self.eq_selectivity(value)).max(0.0)
            }
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let Some(key) = value.join_key() else {
                    return 0.0;
                };
                let frac = match &self.histogram {
                    Some(h) => h.fraction(op, &key),
                    None => DEFAULT_INEQ_FRACTION,
                };
                (frac * self.non_null_fraction()).clamp(0.0, 1.0)
            }
        }
    }

    /// Estimated fraction of rows inside the interval described by an
    /// optional lower bound (`Gt`/`Ge`) and an optional upper bound
    /// (`Lt`/`Le`) — the bound prefix of an index-range scan.
    ///
    /// With both bounds present the two one-sided histogram fractions
    /// combine by inclusion–exclusion: `sel(lo ∧ hi) = sel(lo) + sel(hi)
    /// − sel(non-null)`, exact for the histogram's own fractions (every
    /// non-null row satisfies at least one of the two bounds). The result
    /// is clamped into `[0, min(sel(lo), sel(hi))]`, so a contradictory
    /// interval prices as empty rather than negative.
    pub fn range_selectivity(
        &self,
        lo: Option<(CmpOp, &Value)>,
        hi: Option<(CmpOp, &Value)>,
    ) -> f64 {
        match (lo, hi) {
            (Some((lop, lv)), Some((hop, hv))) => {
                let l = self.cmp_selectivity(lop, lv);
                let h = self.cmp_selectivity(hop, hv);
                (l + h - self.non_null_fraction()).clamp(0.0, l.min(h))
            }
            (Some((op, v)), None) | (None, Some((op, v))) => self.cmp_selectivity(op, v),
            (None, None) => self.non_null_fraction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 80 rows of value 0, 20 distinct singletons 1..=20.
    fn skewed() -> ColumnStats {
        let sorted: Vec<Key> = std::iter::repeat_n(Key::Int(0), 80)
            .chain((1..=20).map(Key::Int))
            .collect();
        ColumnStats {
            rows: 100,
            nulls: 0,
            distinct: 21,
            min: Some(Key::Int(0)),
            max: Some(Key::Int(20)),
            mcv: vec![(Key::Int(0), 80)],
            histogram: Histogram::build(&sorted, 8),
        }
    }

    #[test]
    fn mcv_beats_uniform_on_the_hot_value() {
        let c = skewed();
        assert!((c.eq_selectivity(&Value::Int(0)) - 0.8).abs() < 1e-9);
        // A cold value: 20 remaining rows over 20 remaining distinct.
        let cold = c.eq_selectivity(&Value::Int(7));
        assert!((cold - 0.01).abs() < 1e-9, "{cold}");
    }

    #[test]
    fn out_of_bounds_is_zero() {
        let c = skewed();
        assert_eq!(c.eq_selectivity(&Value::Int(999)), 0.0);
        assert_eq!(c.eq_selectivity(&Value::Null), 0.0);
        assert_eq!(c.cmp_selectivity(CmpOp::Lt, &Value::Null), 0.0);
    }

    #[test]
    fn nulls_scale_comparisons() {
        let mut c = skewed();
        c.rows = 200;
        c.nulls = 100;
        let sel = c.cmp_selectivity(CmpOp::Ge, &Value::Int(0));
        assert!(sel <= 0.5 + 1e-9, "null rows cannot satisfy: {sel}");
    }

    #[test]
    fn ne_complements_eq_within_non_nulls() {
        let c = skewed();
        let ne = c.cmp_selectivity(CmpOp::Ne, &Value::Int(0));
        assert!((ne - 0.2).abs() < 1e-9, "{ne}");
    }

    #[test]
    fn range_combines_bounds_by_inclusion_exclusion() {
        let c = skewed();
        // [1, 20] keeps exactly the 20 singleton rows.
        let both = c.range_selectivity(
            Some((CmpOp::Ge, &Value::Int(1))),
            Some((CmpOp::Le, &Value::Int(20))),
        );
        assert!((both - 0.2).abs() < 0.05, "{both}");
        // A contradictory interval prices as empty, never negative.
        let empty = c.range_selectivity(
            Some((CmpOp::Ge, &Value::Int(21))),
            Some((CmpOp::Le, &Value::Int(0))),
        );
        assert_eq!(empty, 0.0);
        // One-sided bounds pass straight through to cmp_selectivity.
        let one = c.range_selectivity(Some((CmpOp::Gt, &Value::Int(10))), None);
        assert!((one - c.cmp_selectivity(CmpOp::Gt, &Value::Int(10))).abs() < 1e-12);
        // No bounds at all: every non-null row qualifies.
        assert_eq!(c.range_selectivity(None, None), 1.0);
    }

    #[test]
    fn ne_against_an_unmatchable_constant_matches_nothing() {
        // `x <> NULL` is Unknown for every row under 3VL — like every
        // other comparison against NULL/NaN, nothing passes.
        let c = skewed();
        assert_eq!(c.cmp_selectivity(CmpOp::Ne, &Value::Null), 0.0);
        assert_eq!(c.cmp_selectivity(CmpOp::Ne, &Value::Float(f64::NAN)), 0.0);
    }
}
