//! Equi-depth histograms over the workspace's total key order.
//!
//! A histogram is `b+1` fenceposts over the sorted non-null values of a
//! column: each of the `b` buckets holds (approximately) the same number
//! of values, so rank — the fraction of values below a probe — falls out
//! of a binary search over the fenceposts. Buckets whose endpoints are
//! numeric interpolate linearly inside the bucket; other buckets assume
//! the probe sits mid-bucket.
//!
//! Built over [`Key`]s — the canonical total order every engine component
//! (grouping, sorting, deterministic output) already uses — so histograms
//! work for strings and booleans exactly as for numbers, minus the
//! interpolation refinement.

use arc_core::ast::CmpOp;
use arc_core::value::Key;

/// An equi-depth histogram: `buckets() + 1` sorted fenceposts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<Key>,
}

impl Histogram {
    /// Build from the column's non-null values, `sorted` ascending
    /// (duplicates included — equi-depth needs the value *multiset*).
    /// Returns `None` for an empty column.
    pub fn build(sorted: &[Key], buckets: usize) -> Option<Histogram> {
        if sorted.is_empty() || buckets == 0 {
            return None;
        }
        let b = buckets.min(sorted.len().max(1));
        let last = sorted.len() - 1;
        let bounds: Vec<Key> = (0..=b).map(|i| sorted[i * last / b].clone()).collect();
        Some(Histogram { bounds })
    }

    /// Build from `(value, count)` pairs sorted ascending by value — the
    /// run-length form of the multiset [`Histogram::build`] takes. The
    /// fenceposts are **identical** to building from the expanded
    /// multiset, without ever materializing it: each fencepost position
    /// `i·last/b` is located by a cumulative walk over the counts.
    /// Returns `None` when the counts sum to zero.
    pub fn build_weighted(pairs: &[(Key, u64)], buckets: usize) -> Option<Histogram> {
        let total: u64 = pairs.iter().map(|(_, c)| c).sum();
        if total == 0 || buckets == 0 {
            return None;
        }
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "pairs must be sorted by value, without duplicates"
        );
        let b = buckets.min(total as usize) as u64;
        let last = total - 1;
        let mut bounds = Vec::with_capacity(b as usize + 1);
        let mut j = 0usize; // current pair…
        let mut covered = pairs[0].1; // …and the count through it
        for i in 0..=b {
            let pos = i * last / b; // non-decreasing in i
            while covered <= pos {
                j += 1;
                covered += pairs[j].1;
            }
            bounds.push(pairs[j].0.clone());
        }
        Some(Histogram { bounds })
    }

    /// Rebuild from serialized fenceposts.
    pub fn from_bounds(bounds: Vec<Key>) -> Result<Histogram, String> {
        if bounds.len() < 2 {
            return Err("histogram needs at least two fenceposts".into());
        }
        Ok(Histogram { bounds })
    }

    /// The fenceposts (for serialization).
    pub fn bounds(&self) -> &[Key] {
        &self.bounds
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Estimated fraction of (non-null) column values `v` with `v < key`
    /// (`strict`) or `v <= key` (`!strict`).
    fn rank(&self, key: &Key, strict: bool) -> f64 {
        let b = self.buckets() as f64;
        // Number of fenceposts strictly below (or at-or-below) the probe.
        let i = if strict {
            self.bounds.partition_point(|bound| bound < key)
        } else {
            self.bounds.partition_point(|bound| bound <= key)
        };
        if i == 0 {
            return 0.0;
        }
        if i == self.bounds.len() {
            return 1.0;
        }
        // The probe sits inside bucket i-1 (between bounds[i-1] and
        // bounds[i]): interpolate when the bucket endpoints are numeric.
        let lo = &self.bounds[i - 1];
        let hi = &self.bounds[i];
        let intra = match (key_num(lo), key_num(hi), key_num(key)) {
            (Some(l), Some(h), Some(k)) if h > l => ((k - l) / (h - l)).clamp(0.0, 1.0),
            _ => 0.5,
        };
        (((i - 1) as f64 + intra) / b).clamp(0.0, 1.0)
    }

    /// Estimated fraction of (non-null) column values `v` satisfying
    /// `v op key`. Equality and inequality are the caller's business
    /// (MCV/distinct-based — see [`ColumnStats`](crate::column::ColumnStats));
    /// this answers the four ordering comparisons.
    pub fn fraction(&self, op: CmpOp, key: &Key) -> f64 {
        match op {
            CmpOp::Lt => self.rank(key, true),
            CmpOp::Le => self.rank(key, false),
            CmpOp::Gt => 1.0 - self.rank(key, false),
            CmpOp::Ge => 1.0 - self.rank(key, true),
            // Not this component's job; a neutral answer keeps misuse safe.
            CmpOp::Eq | CmpOp::Ne => 0.5,
        }
    }
}

/// Numeric view of a key, for intra-bucket interpolation.
fn key_num(k: &Key) -> Option<f64> {
    match k {
        Key::Int(i) => Some(*i as f64),
        Key::Float(bits) => {
            let f = f64::from_bits(*bits);
            f.is_finite().then_some(f)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: i64) -> Vec<Key> {
        (0..n).map(Key::Int).collect()
    }

    #[test]
    fn uniform_ranks_interpolate() {
        let h = Histogram::build(&uniform(1000), 32).unwrap();
        let frac = h.fraction(CmpOp::Lt, &Key::Int(250));
        assert!((frac - 0.25).abs() < 0.05, "lt 250 → {frac}");
        let frac = h.fraction(CmpOp::Ge, &Key::Int(900));
        assert!((frac - 0.10).abs() < 0.05, "ge 900 → {frac}");
    }

    #[test]
    fn out_of_range_probes_saturate() {
        let h = Histogram::build(&uniform(100), 8).unwrap();
        assert_eq!(h.fraction(CmpOp::Lt, &Key::Int(-5)), 0.0);
        assert_eq!(h.fraction(CmpOp::Le, &Key::Int(500)), 1.0);
        assert_eq!(h.fraction(CmpOp::Gt, &Key::Int(500)), 0.0);
    }

    #[test]
    fn skew_is_depth_weighted() {
        // 90% of the values are 0: the probe `> 0` must see ~10%.
        let mut vals: Vec<Key> = vec![Key::Int(0); 900];
        vals.extend((1..=100).map(Key::Int));
        let h = Histogram::build(&vals, 16).unwrap();
        let frac = h.fraction(CmpOp::Gt, &Key::Int(0));
        assert!(frac < 0.2, "gt 0 on 90%-zero data → {frac}");
    }

    #[test]
    fn strings_order_without_interpolation() {
        let vals: Vec<Key> = ["a", "b", "c", "d", "e", "f", "g", "h"]
            .iter()
            .map(|s| Key::Str(s.to_string()))
            .collect();
        let h = Histogram::build(&vals, 4).unwrap();
        let frac = h.fraction(CmpOp::Lt, &Key::Str("e".into()));
        assert!((0.25..=0.75).contains(&frac), "lt 'e' → {frac}");
    }

    #[test]
    fn weighted_build_matches_expanded_multiset() {
        // Skewed, uniform, tiny, and single-value shapes — the weighted
        // build must reproduce the expanded build's fenceposts exactly.
        let shapes: Vec<Vec<(Key, u64)>> = vec![
            (0..200)
                .map(|i| (Key::Int(i), 1 + (i as u64 % 7) * 13))
                .collect(),
            (0..1000).map(|i| (Key::Int(i), 1)).collect(),
            vec![(Key::Int(0), 900), (Key::Int(1), 1), (Key::Int(2), 99)],
            vec![(Key::Int(7), 50)],
            vec![(Key::Str("a".into()), 3), (Key::Str("b".into()), 1)],
        ];
        for pairs in shapes {
            let mut expanded: Vec<Key> = Vec::new();
            for (k, c) in &pairs {
                expanded.extend(std::iter::repeat_n(k.clone(), *c as usize));
            }
            for buckets in [1usize, 4, 8, 32] {
                let want = Histogram::build(&expanded, buckets).unwrap();
                let got = Histogram::build_weighted(&pairs, buckets).unwrap();
                assert_eq!(got.bounds(), want.bounds(), "{buckets} buckets");
            }
        }
        assert!(Histogram::build_weighted(&[], 8).is_none());
        assert!(Histogram::build_weighted(&[(Key::Int(1), 0)], 8).is_none());
    }

    #[test]
    fn single_value_column() {
        let vals = vec![Key::Int(7); 50];
        let h = Histogram::build(&vals, 8).unwrap();
        assert_eq!(h.fraction(CmpOp::Le, &Key::Int(7)), 1.0);
        assert_eq!(h.fraction(CmpOp::Lt, &Key::Int(7)), 0.0);
    }
}
