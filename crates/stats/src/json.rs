//! JSON interchange for [`TableStats`], over the workspace's
//! [`arc_core::json`] document model — the same hand-rolled codec the ALT
//! wire format uses, so catalogs can persist and reload their statistics
//! with no extra dependencies.
//!
//! Keys encode as native JSON where unambiguous (`null`, booleans,
//! integers, strings) and as a `{"fbits": n}` wrapper for floats (the raw
//! bit pattern, so `NaN`-adjacent payloads survive round-trips exactly).

use crate::column::ColumnStats;
use crate::histogram::Histogram;
use crate::table::TableStats;
use arc_core::json::Json;
use arc_core::value::Key;

/// Encode statistics as a JSON document.
pub fn stats_json(ts: &TableStats) -> Json {
    Json::obj([
        ("rows", Json::Int(ts.rows as i64)),
        ("row_distinct", Json::Int(ts.row_distinct as i64)),
        (
            "columns",
            Json::Arr(ts.columns.iter().map(column_json).collect()),
        ),
    ])
}

/// Encode statistics as canonical JSON text.
pub fn to_json(ts: &TableStats) -> String {
    stats_json(ts).to_string()
}

/// Decode statistics from JSON text.
pub fn from_json(s: &str) -> Result<TableStats, String> {
    let doc = arc_core::json::parse(s).map_err(|e| e.to_string())?;
    stats_from(&doc)
}

fn column_json(c: &ColumnStats) -> Json {
    let key_opt = |k: &Option<Key>| match k {
        None => Json::Null,
        Some(k) => key_json(k),
    };
    Json::obj([
        ("rows", Json::Int(c.rows as i64)),
        ("nulls", Json::Int(c.nulls as i64)),
        ("distinct", Json::Int(c.distinct as i64)),
        ("min", key_opt(&c.min)),
        ("max", key_opt(&c.max)),
        (
            "mcv",
            Json::Arr(
                c.mcv
                    .iter()
                    .map(|(k, n)| Json::Arr(vec![key_json(k), Json::Int(*n as i64)]))
                    .collect(),
            ),
        ),
        (
            "histogram",
            match &c.histogram {
                None => Json::Null,
                Some(h) => Json::Arr(h.bounds().iter().map(key_json).collect()),
            },
        ),
    ])
}

fn key_json(k: &Key) -> Json {
    match k {
        Key::Null => Json::Null,
        Key::Bool(b) => Json::Bool(*b),
        Key::Int(i) => Json::Int(*i),
        Key::Float(bits) => Json::tag("fbits", Json::Int(*bits as i64)),
        Key::Str(s) => Json::Str(s.clone()),
    }
}

fn key_from(j: &Json) -> Result<Key, String> {
    match j {
        Json::Null => Ok(Key::Null),
        Json::Bool(b) => Ok(Key::Bool(*b)),
        Json::Int(i) => Ok(Key::Int(*i)),
        Json::Str(s) => Ok(Key::Str(s.clone())),
        Json::Obj(m) => match m.get("fbits") {
            Some(Json::Int(bits)) => Ok(Key::Float(*bits as u64)),
            _ => Err("expected {\"fbits\": n} key".into()),
        },
        other => Err(format!("unexpected key encoding: {other}")),
    }
}

fn as_u64(j: &Json, what: &str) -> Result<u64, String> {
    match j {
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(format!(
            "{what}: expected non-negative integer, got {other}"
        )),
    }
}

fn field<'j>(m: &'j std::collections::BTreeMap<String, Json>, k: &str) -> Result<&'j Json, String> {
    m.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

fn column_from(j: &Json) -> Result<ColumnStats, String> {
    let Json::Obj(m) = j else {
        return Err("column stats must be an object".into());
    };
    let key_opt = |j: &Json| -> Result<Option<Key>, String> {
        match j {
            Json::Null => Ok(None),
            other => Ok(Some(key_from(other)?)),
        }
    };
    let mcv = match field(m, "mcv")? {
        Json::Arr(entries) => entries
            .iter()
            .map(|e| match e {
                Json::Arr(pair) if pair.len() == 2 => {
                    Ok((key_from(&pair[0])?, as_u64(&pair[1], "mcv count")?))
                }
                other => Err(format!("mcv entry must be [key, count], got {other}")),
            })
            .collect::<Result<Vec<_>, String>>()?,
        other => return Err(format!("mcv must be an array, got {other}")),
    };
    let histogram = match field(m, "histogram")? {
        Json::Null => None,
        Json::Arr(bounds) => Some(Histogram::from_bounds(
            bounds.iter().map(key_from).collect::<Result<_, _>>()?,
        )?),
        other => return Err(format!("histogram must be an array, got {other}")),
    };
    Ok(ColumnStats {
        rows: as_u64(field(m, "rows")?, "rows")?,
        nulls: as_u64(field(m, "nulls")?, "nulls")?,
        distinct: as_u64(field(m, "distinct")?, "distinct")?,
        min: key_opt(field(m, "min")?)?,
        max: key_opt(field(m, "max")?)?,
        mcv,
        histogram,
    })
}

/// Decode statistics from a parsed JSON document.
pub fn stats_from(j: &Json) -> Result<TableStats, String> {
    let Json::Obj(m) = j else {
        return Err("table stats must be an object".into());
    };
    let columns = match field(m, "columns")? {
        Json::Arr(cols) => cols
            .iter()
            .map(column_from)
            .collect::<Result<Vec<_>, String>>()?,
        other => return Err(format!("columns must be an array, got {other}")),
    };
    Ok(TableStats {
        rows: as_u64(field(m, "rows")?, "rows")?,
        row_distinct: as_u64(field(m, "row_distinct")?, "row_distinct")?,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::value::Value;

    #[test]
    fn round_trips_analyzed_stats() {
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| {
                vec![
                    Value::Int(i % 7),
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Float(i as f64 / 3.0)
                    },
                    Value::str(format!("s{}", i % 3)),
                ]
            })
            .collect();
        let ts = TableStats::analyze(3, &rows);
        let text = to_json(&ts);
        let back = from_json(&text).expect("round-trip");
        assert_eq!(back, ts);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_json("[]").is_err());
        assert!(from_json("{\"rows\": 1}").is_err());
        assert!(from_json("{\"rows\": -3, \"row_distinct\": 1, \"columns\": []}").is_err());
    }
}
