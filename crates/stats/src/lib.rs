//! # arc-stats — column statistics for ARC catalogs
//!
//! The paper positions ARC as the layer where optimizers reason about
//! query *patterns* independently of surface syntax; this crate supplies
//! the data those decisions need. An `ANALYZE` pass
//! ([`TableStats::analyze`]) summarizes each stored relation into
//! per-column sketches:
//!
//! * a **register-based distinct counter** ([`sketch::DistinctSketch`],
//!   HLL-style: 256 registers, deterministic hash) for distinct join-key
//!   counts in bounded memory;
//! * an **equi-depth histogram** ([`histogram::Histogram`]) over the
//!   workspace's total [`Key`](arc_core::value::Key) order, for range and
//!   out-of-bounds estimates;
//! * a **most-common-values list** (per [`column::ColumnStats`]) so
//!   equality selectivity on skewed columns is frequency-aware rather
//!   than uniform;
//! * **null / min / max counts**.
//!
//! [`table::TableStats`] packages the columns of one relation, adds a
//! whole-row distinct sketch (the correlation bound for multi-column join
//! keys — see [`TableStats::distinct_cols`]), and serializes through
//! `arc_core::json` so catalogs can persist their statistics.
//!
//! Everything counts with [`Value::join_key`](arc_core::value::Value::join_key)
//! semantics — `NULL` and float `NaN` never match an equality — which is
//! the same rule the engine's hash-join executor indexes by, so estimates
//! and execution can never disagree about what "equal" means.
//!
//! The crate is std-only and depends only on `arc-core`: the planner
//! (`arc-plan`) consumes these summaries through its estimator trait, and
//! the engine's catalog produces them.

#![warn(missing_docs)]

pub mod column;
pub mod histogram;
pub mod json;
pub mod sketch;
pub mod table;

pub use column::ColumnStats;
pub use histogram::Histogram;
pub use sketch::DistinctSketch;
pub use table::{TableStats, HISTOGRAM_BUCKETS, MCV_ENTRIES, SAMPLE_CAP};

/// Interpret the `ARC_STATS` environment value: statistics collection is
/// on unless explicitly disabled. Only `off`/`0`/`false`/`no`
/// (case-insensitive) disable it — the escape hatch is for *turning the
/// subsystem off*, so an unrecognized value errs on the side of keeping
/// statistics, mirroring how `ARC_PLAN` treats its affirmative values.
pub fn stats_enabled(value: Option<&str>) -> bool {
    match value.map(str::to_lowercase) {
        Some(v) => !matches!(v.as_str(), "off" | "0" | "false" | "no"),
        None => true,
    }
}

/// [`stats_enabled`] over the live `ARC_STATS` environment variable.
pub fn stats_enabled_from_env() -> bool {
    stats_enabled(std::env::var("ARC_STATS").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_switch_defaults_on() {
        assert!(stats_enabled(None));
        assert!(stats_enabled(Some("")));
        assert!(stats_enabled(Some("on")));
        assert!(stats_enabled(Some("anything")));
        for off in ["off", "OFF", "0", "false", "no"] {
            assert!(!stats_enabled(Some(off)), "{off}");
        }
    }
}
