//! A register-based distinct counter (HLL-style).
//!
//! 256 six-bit registers (stored as bytes), a deterministic 64-bit hash
//! (FNV-1a over the canonical key bytes, finished with a splitmix64
//! avalanche so short inputs still spread across registers), harmonic-mean
//! estimation with the standard linear-counting correction for small
//! cardinalities. Standard error is `1.04/√256 ≈ 6.5%` — far inside the
//! factor the planner needs to *rank* join candidates — and the state is
//! 256 bytes per column regardless of relation size.

use arc_core::value::Key;

/// log2 of the register count.
const P: u32 = 8;
/// Register count (2^P).
const M: usize = 1 << P;
/// Bias correction for M = 256 (the standard HLL constant).
const ALPHA: f64 = 0.7182725932495458; // 0.7213 / (1 + 1.079 / 256)

/// A streaming distinct-count sketch over canonical [`Key`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    registers: Vec<u8>, // length M; Vec (not array) keeps serialization simple
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch::new()
    }
}

impl DistinctSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        DistinctSketch {
            registers: vec![0; M],
        }
    }

    /// Rebuild from serialized registers (must be exactly 256 bytes).
    pub fn from_registers(registers: Vec<u8>) -> Result<Self, String> {
        if registers.len() != M {
            return Err(format!(
                "distinct sketch needs {M} registers, got {}",
                registers.len()
            ));
        }
        Ok(DistinctSketch { registers })
    }

    /// The raw registers (for serialization).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Observe one key.
    pub fn insert(&mut self, key: &Key) {
        let h = hash_key(key);
        let idx = (h >> (64 - P)) as usize;
        // Rank of the first set bit in the remaining stream (1-based);
        // an all-zero remainder gets the maximum rank.
        let w = h << P;
        let rho = if w == 0 {
            64 - P + 1
        } else {
            w.leading_zeros() + 1
        } as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// The estimated distinct count.
    pub fn estimate(&self) -> u64 {
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = ALPHA * (M as f64) * (M as f64) / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        let corrected = if raw <= 2.5 * M as f64 && zeros > 0 {
            // Linear counting: far more accurate in the small range.
            (M as f64) * ((M as f64) / zeros as f64).ln()
        } else {
            raw
        };
        corrected.round() as u64
    }
}

/// Deterministic 64-bit hash of a canonical key: FNV-1a over tagged bytes,
/// then a splitmix64 finalizer (FNV alone biases the low bits on short
/// inputs, which would starve HLL registers).
pub fn hash_key(key: &Key) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    match key {
        Key::Null => eat(&[0x01]),
        Key::Bool(b) => eat(&[0x02, u8::from(*b)]),
        Key::Int(i) => {
            eat(&[0x03]);
            eat(&i.to_le_bytes());
        }
        Key::Float(bits) => {
            eat(&[0x04]);
            eat(&bits.to_le_bytes());
        }
        Key::Str(s) => {
            eat(&[0x05]);
            eat(s.as_bytes());
            eat(&[0xff]);
        }
    }
    mix(h)
}

/// splitmix64's finalizer, applied twice — FNV's output on short inputs is
/// too structured for register/rank splitting, and one round still leaves
/// measurable bias in the leading-zero ranks.
fn mix(h: u64) -> u64 {
    let mut z = h;
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// Combine a row's per-column hashes into one row hash (order-sensitive),
/// for whole-row distinct sketches.
pub fn combine_hashes(acc: u64, next: u64) -> u64 {
    // The 64-bit FNV prime keeps combination non-commutative, so
    // (a, b) and (b, a) produce different row hashes.
    acc.wrapping_mul(0x0000_0100_0000_01b3) ^ next
}

/// A sketch fed with pre-combined row hashes rather than keys (the
/// whole-row distinct counter of [`TableStats`](crate::table::TableStats)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSketch {
    inner: DistinctSketch,
}

impl RowSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        RowSketch::default()
    }

    /// Observe one pre-hashed row.
    pub fn insert_hash(&mut self, h: u64) {
        // Finalize-mix the combined hash so correlated row hashes spread,
        // then update registers exactly as a key insert would.
        let z = mix(h);
        let idx = (z >> (64 - P)) as usize;
        let w = z << P;
        let rho = if w == 0 {
            64 - P + 1
        } else {
            w.leading_zeros() + 1
        } as u8;
        if rho > self.inner.registers[idx] {
            self.inner.registers[idx] = rho;
        }
    }

    /// The estimated distinct row count.
    pub fn estimate(&self) -> u64 {
        self.inner.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactish_in_the_small_range() {
        let mut s = DistinctSketch::new();
        for i in 0..50i64 {
            s.insert(&Key::Int(i));
            s.insert(&Key::Int(i)); // duplicates must not inflate
        }
        let est = s.estimate();
        assert!((45..=55).contains(&est), "est {est} for 50 distinct");
    }

    #[test]
    fn within_error_bound_at_scale() {
        let mut s = DistinctSketch::new();
        let n = 100_000i64;
        for i in 0..n {
            s.insert(&Key::Int(i));
        }
        let est = s.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.2, "relative error {err:.3} (est {est})");
    }

    #[test]
    fn mixed_key_types_do_not_collide() {
        let mut s = DistinctSketch::new();
        for i in 0..100i64 {
            s.insert(&Key::Int(i));
            s.insert(&Key::Str(i.to_string()));
            s.insert(&Key::Float((i as f64 + 0.5).to_bits()));
        }
        let est = s.estimate();
        assert!((270..=330).contains(&est), "est {est} for 300 distinct");
    }

    #[test]
    fn round_trips_registers() {
        let mut s = DistinctSketch::new();
        for i in 0..1000i64 {
            s.insert(&Key::Int(i * 7));
        }
        let back = DistinctSketch::from_registers(s.registers().to_vec()).unwrap();
        assert_eq!(back.estimate(), s.estimate());
        assert!(DistinctSketch::from_registers(vec![0; 3]).is_err());
    }
}
