//! Per-relation statistics: the `ANALYZE` pass and multi-column
//! distinct-key estimation.

use crate::column::ColumnStats;
use crate::histogram::Histogram;
use crate::sketch::{combine_hashes, hash_key, DistinctSketch, RowSketch};
use arc_core::ast::CmpOp;
use arc_core::column::ColumnSet;
use arc_core::value::{Key, Value};
use std::collections::HashMap;

/// Buckets per equi-depth histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Maximum entries per most-common-values list.
pub const MCV_ENTRIES: usize = 8;

/// ANALYZE samples at most this many rows for histograms and MCV lists
/// (strided over the whole relation, so late skew is still seen); the
/// distinct sketches and null/min/max counts always stream every row.
pub const SAMPLE_CAP: usize = 8192;

/// Statistics of one relation: one [`ColumnStats`] per schema position
/// plus a whole-row distinct estimate (the correlation bound).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Total rows at ANALYZE time.
    pub rows: u64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Estimated distinct whole rows (grouping-key semantics). Any column
    /// subset projects *onto* the full row, so this upper-bounds every
    /// multi-column distinct estimate — which is what lets
    /// [`TableStats::distinct_cols`] stay sane on correlated keys.
    pub row_distinct: u64,
}

impl TableStats {
    /// The `ANALYZE` pass: summarize `rows` (each of width `arity`).
    ///
    /// Relations that fit in the sample (up to [`SAMPLE_CAP`] rows — in
    /// particular everything the catalog auto-analyzes at registration)
    /// are counted **exactly**: distinct counts come from the value-
    /// frequency maps and the whole-row count from a key set, with no
    /// sketch hashing at all. Larger relations stream every row through
    /// the register sketches (per column + whole row) for null/min/max
    /// and distinct counts, and build histograms/MCV lists from a strided
    /// sample (counts scaled back to the full relation; the stride covers
    /// the whole relation, so late skew is still seen). Histograms build
    /// straight from the sampled value *frequencies* in run-length form —
    /// no per-column sorted multiset is ever materialized.
    ///
    /// [`TableStats::analyze_chunks`] computes the same statistics from a
    /// columnar encoding, one typed pass per column.
    pub fn analyze(arity: usize, rows: &[Vec<Value>]) -> TableStats {
        let n = rows.len();
        let stride = n.div_ceil(SAMPLE_CAP).max(1);
        let exact = stride == 1;

        let mut sketches: Vec<DistinctSketch> = vec![DistinctSketch::new(); arity];
        let mut nulls: Vec<u64> = vec![0; arity];
        let mut mins: Vec<Option<Key>> = vec![None; arity];
        let mut maxs: Vec<Option<Key>> = vec![None; arity];
        let mut row_sketch = RowSketch::new();
        let mut exact_rows: std::collections::HashSet<Vec<Key>> = Default::default();

        for row in rows {
            let mut row_hash: u64 = 0;
            for (c, v) in row.iter().enumerate() {
                if !exact {
                    row_hash = combine_hashes(row_hash, hash_key(&v.key()));
                }
                match v.join_key() {
                    None => nulls[c] += 1,
                    Some(k) => {
                        if !exact {
                            sketches[c].insert(&k);
                        }
                        if mins[c].as_ref().is_none_or(|m| &k < m) {
                            mins[c] = Some(k.clone());
                        }
                        if maxs[c].as_ref().is_none_or(|m| &k > m) {
                            maxs[c] = Some(k);
                        }
                    }
                }
            }
            if exact {
                exact_rows.insert(row.iter().map(Value::key).collect());
            } else {
                row_sketch.insert_hash(row_hash);
            }
        }

        // Strided sample for value frequencies (the full relation when
        // exact).
        let mut counts: Vec<HashMap<Key, u64>> = vec![HashMap::new(); arity];
        for row in rows.iter().step_by(stride) {
            for (c, v) in row.iter().enumerate() {
                if let Some(k) = v.join_key() {
                    *counts[c].entry(k).or_insert(0) += 1;
                }
            }
        }

        let columns = (0..arity)
            .map(|c| {
                column_stats(
                    n,
                    stride,
                    exact,
                    &counts[c],
                    nulls[c],
                    &mins[c],
                    &maxs[c],
                    &sketches[c],
                )
            })
            .collect();

        let row_distinct = if exact {
            exact_rows.len() as u64
        } else {
            row_sketch.estimate().max(1)
        };
        TableStats {
            rows: n as u64,
            columns,
            row_distinct,
        }
    }

    /// [`TableStats::analyze`] over a columnar encoding: one typed pass
    /// per column straight off the chunk slices, instead of decoding
    /// every row cell-by-cell. Produces **identical** statistics to the
    /// row-at-a-time pass — `cols` must encode exactly `rows` (callers
    /// hold both; the engine's `Relation` keeps them in sync).
    pub fn analyze_chunks(arity: usize, rows: &[Vec<Value>], cols: &ColumnSet) -> TableStats {
        let n = cols.rows();
        debug_assert_eq!(n, rows.len(), "columns must encode the given rows");
        let stride = n.div_ceil(SAMPLE_CAP).max(1);
        let exact = stride == 1;

        // Per-column pass: join keys per chunk into a reused buffer (one
        // typed decode per chunk, no per-row Value dispatch).
        let mut key_buf: Vec<Option<Key>> = Vec::new();
        let columns = (0..arity)
            .map(|c| {
                let mut sketch = DistinctSketch::new();
                let mut nulls: u64 = 0;
                let mut min: Option<Key> = None;
                let mut max: Option<Key> = None;
                let mut counts: HashMap<Key, u64> = HashMap::new();
                for chunk in cols.chunks() {
                    chunk.col(c).join_keys_into(&mut key_buf);
                    for (i, slot) in key_buf.iter().enumerate() {
                        match slot {
                            None => nulls += 1,
                            Some(k) => {
                                if !exact {
                                    sketch.insert(k);
                                }
                                if min.as_ref().is_none_or(|m| k < m) {
                                    min = Some(k.clone());
                                }
                                if max.as_ref().is_none_or(|m| k > m) {
                                    max = Some(k.clone());
                                }
                                if (chunk.base() + i) % stride == 0 {
                                    *counts.entry(k.clone()).or_insert(0) += 1;
                                }
                            }
                        }
                    }
                }
                column_stats(n, stride, exact, &counts, nulls, &min, &max, &sketch)
            })
            .collect();

        // Whole-row distinct: the exact path needs real grouping keys (a
        // key set), the sketch path folds per-column grouping-key hashes
        // into one hash per row — column-at-a-time, in schema order, so
        // the fold matches the row-at-a-time pass hash for hash.
        let row_distinct = if exact {
            let mut exact_rows: std::collections::HashSet<Vec<Key>> = Default::default();
            for row in rows {
                exact_rows.insert(row.iter().map(Value::key).collect());
            }
            exact_rows.len() as u64
        } else {
            let mut hashes: Vec<u64> = vec![0; n];
            for c in 0..arity {
                for chunk in cols.chunks() {
                    let base = chunk.base();
                    chunk.col(c).for_each_key(|i, k| {
                        hashes[base + i] = combine_hashes(hashes[base + i], hash_key(&k));
                    });
                }
            }
            let mut row_sketch = RowSketch::new();
            for h in hashes {
                row_sketch.insert_hash(h);
            }
            row_sketch.estimate().max(1)
        };
        TableStats {
            rows: n as u64,
            columns,
            row_distinct,
        }
    }

    /// Estimated distinct join keys over the column set `cols`.
    ///
    /// A single column answers from its sketch. A multi-column key starts
    /// from the independence estimate (the product of per-column distinct
    /// counts) and then clamps it into the bounds that hold regardless of
    /// correlation: at least the largest single-column count, at most the
    /// whole-row distinct count (projection only merges rows) and the row
    /// count itself. Correlated keys — where the product wildly
    /// overshoots — land on the upper bound instead of the fantasy.
    pub fn distinct_cols(&self, cols: &[usize]) -> u64 {
        let ds: Vec<u64> = cols
            .iter()
            .filter_map(|&c| self.columns.get(c))
            .map(|c| c.distinct.max(1))
            .collect();
        match ds.as_slice() {
            [] => 1,
            [one] => (*one).min(self.rows.max(1)),
            many => {
                let prod = many
                    .iter()
                    .try_fold(1u64, |acc, &d| acc.checked_mul(d))
                    .unwrap_or(u64::MAX);
                let lower = *many.iter().max().expect("non-empty");
                let upper = self.rows.max(1).min(self.row_distinct.max(lower));
                prod.clamp(lower, upper.max(lower))
            }
        }
    }

    /// Estimated fraction of rows satisfying `cols[col] op value`
    /// (delegates to [`ColumnStats::cmp_selectivity`]).
    pub fn selectivity(&self, col: usize, op: CmpOp, value: &Value) -> Option<f64> {
        self.columns.get(col).map(|c| c.cmp_selectivity(op, value))
    }

    /// Estimated fraction of rows whose column `col` lies in the interval
    /// `lo ∧ hi` (delegates to [`ColumnStats::range_selectivity`]) — the
    /// quantity the planner prices an index-range bound prefix by.
    pub fn range_selectivity(
        &self,
        col: usize,
        lo: Option<(CmpOp, &Value)>,
        hi: Option<(CmpOp, &Value)>,
    ) -> Option<f64> {
        self.columns.get(col).map(|c| c.range_selectivity(lo, hi))
    }
}

/// Finalize one column's statistics from its streamed aggregates — shared
/// by the row-at-a-time and columnar analyze passes, so the two produce
/// bit-identical results by construction.
#[allow(clippy::too_many_arguments)]
fn column_stats(
    n: usize,
    stride: usize,
    exact: bool,
    counts: &HashMap<Key, u64>,
    nulls: u64,
    min: &Option<Key>,
    max: &Option<Key>,
    sketch: &DistinctSketch,
) -> ColumnStats {
    let distinct = if exact {
        counts.len() as u64
    } else {
        sketch.estimate().max(1)
    };
    // MCV: the top raw sample counts. A value must be *seen* at least
    // twice (a once-sampled value scaled by the stride is noise, not a
    // frequency) and its scaled frequency must beat the column average
    // (a uniform column keeps an empty list).
    let mut by_freq: Vec<(Key, u64)> = counts.iter().map(|(k, c)| (k.clone(), *c)).collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let non_null = (n as u64).saturating_sub(nulls);
    let avg = non_null as f64 / distinct.max(1) as f64;
    let mcv: Vec<(Key, u64)> = by_freq
        .into_iter()
        .take(MCV_ENTRIES)
        .filter(|(_, raw)| *raw >= 2)
        .map(|(k, raw)| (k, raw * stride as u64))
        .filter(|(_, scaled)| *scaled as f64 > avg)
        .collect();
    // Histogram over the sampled non-null value frequencies, in
    // run-length form: [`Histogram::build_weighted`] places the same
    // fenceposts the expanded multiset would, without materializing it.
    let mut by_key: Vec<(Key, u64)> = counts.iter().map(|(k, c)| (k.clone(), *c)).collect();
    by_key.sort_by(|a, b| a.0.cmp(&b.0));
    ColumnStats {
        rows: n as u64,
        nulls,
        distinct,
        min: min.clone(),
        max: max.clone(),
        mcv,
        histogram: Histogram::build_weighted(&by_key, HISTOGRAM_BUCKETS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_ab(pairs: &[(i64, i64)]) -> Vec<Vec<Value>> {
        pairs
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
            .collect()
    }

    #[test]
    fn analyze_counts_nulls_min_max() {
        let rows = vec![
            vec![Value::Int(3), Value::Null],
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Float(f64::NAN), Value::Int(9)],
        ];
        let ts = TableStats::analyze(2, &rows);
        assert_eq!(ts.rows, 3);
        assert_eq!(ts.columns[0].nulls, 1); // NaN never joins
        assert_eq!(ts.columns[1].nulls, 1);
        assert_eq!(ts.columns[0].min, Some(Key::Int(1)));
        assert_eq!(ts.columns[0].max, Some(Key::Int(3)));
        assert_eq!(ts.columns[1].distinct, 2);
    }

    #[test]
    fn correlated_keys_clamp_to_row_distinct() {
        // A and B are perfectly correlated (B = A): the independence
        // product says 100 × 100 = 10000 distinct pairs; the truth is 100.
        let pairs: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let ts = TableStats::analyze(2, &rows_ab(&pairs));
        let d = ts.distinct_cols(&[0, 1]);
        assert_eq!(d, 100, "correlation bound must cap the product");
    }

    #[test]
    fn independent_keys_keep_the_product() {
        // 10 × 10 grid: 100 distinct pairs over 100 rows.
        let pairs: Vec<(i64, i64)> = (0..100).map(|i| (i % 10, i / 10)).collect();
        let ts = TableStats::analyze(2, &rows_ab(&pairs));
        assert_eq!(ts.distinct_cols(&[0]), 10);
        assert_eq!(ts.distinct_cols(&[1]), 10);
        assert_eq!(ts.distinct_cols(&[0, 1]), 100);
    }

    #[test]
    fn mcv_captures_skew() {
        // 0 appears 91 times, 1..=9 once each.
        let pairs: Vec<(i64, i64)> = (0..100)
            .map(|i| (if i < 91 { 0 } else { i - 90 }, i))
            .collect();
        let ts = TableStats::analyze(2, &rows_ab(&pairs));
        let c = &ts.columns[0];
        assert_eq!(c.mcv.first(), Some(&(Key::Int(0), 91)));
        let hot = c.eq_selectivity(&Value::Int(0));
        assert!((hot - 0.91).abs() < 1e-9, "{hot}");
        let cold = c.eq_selectivity(&Value::Int(5));
        assert!(cold < 0.02, "{cold}");
    }

    #[test]
    fn empty_relation_analyzes() {
        let ts = TableStats::analyze(2, &[]);
        assert_eq!(ts.rows, 0);
        assert_eq!(ts.columns.len(), 2);
        assert_eq!(ts.columns[0].eq_selectivity(&Value::Int(1)), 0.0);
        assert_eq!(ts.distinct_cols(&[0, 1]), 1);
    }

    #[test]
    fn sampled_mcv_requires_repeated_observations() {
        // 40k unique values, stride 5: a value sampled once must not
        // enter the MCV list claiming a stride-scaled frequency of 5.
        let pairs: Vec<(i64, i64)> = (0..40_000).map(|i| (i, i % 3)).collect();
        let ts = TableStats::analyze(2, &rows_ab(&pairs));
        assert!(
            ts.columns[0].mcv.is_empty(),
            "unique sampled column fabricated MCVs: {:?}",
            ts.columns[0].mcv
        );
    }

    #[test]
    fn chunked_analyze_is_identical_to_row_analyze() {
        use arc_core::column::ColumnSet;
        // Mixed types, NULLs, NaN, all-NULL columns, chunk-boundary and
        // beyond-sample sizes: the columnar pass must agree bit for bit.
        let mk = |n: i64| -> Vec<Vec<Value>> {
            (0..n)
                .map(|i| {
                    vec![
                        match i % 5 {
                            0 => Value::Null,
                            1 => Value::Float(f64::NAN),
                            2 => Value::Float((i % 97) as f64),
                            3 => Value::Str(format!("s{}", i % 13)),
                            _ => Value::Int(i % 97),
                        },
                        Value::Int(i % 7),
                        Value::Null,
                    ]
                })
                .collect()
        };
        for n in [0i64, 1, 50, 1023, 1024, 1025, 2500, 20_000] {
            let rows = mk(n);
            let cols = ColumnSet::encode(3, &rows);
            assert_eq!(
                TableStats::analyze_chunks(3, &rows, &cols),
                TableStats::analyze(3, &rows),
                "divergence at n={n}"
            );
        }
    }

    #[test]
    fn large_relations_sample_but_stay_close() {
        // 40k rows, uniform over 1000 keys: stride sampling + sketches.
        let pairs: Vec<(i64, i64)> = (0..40_000).map(|i| (i % 1000, i)).collect();
        let ts = TableStats::analyze(2, &rows_ab(&pairs));
        let d = ts.distinct_cols(&[0]) as f64;
        assert!((500.0..=2000.0).contains(&d), "distinct(A) ≈ 1000, got {d}");
        let sel = ts.selectivity(0, CmpOp::Lt, &Value::Int(250)).unwrap();
        assert!((sel - 0.25).abs() < 0.1, "lt 250 → {sel}");
    }
}
