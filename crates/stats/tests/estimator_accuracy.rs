//! Estimator-accuracy properties: on generated **skewed** relations the
//! statistics answer within bounded error factors.
//!
//! The bounds are deliberately loose enough to hold for every generated
//! instance (sketches have ~6.5% standard error; histograms answer to
//! one bucket), and deliberately tight enough that a broken formula —
//! uniform selectivity on a skewed column, an independence-product
//! distinct estimate on correlated keys — fails them immediately.

use arc_core::ast::CmpOp;
use arc_core::value::Value;
use arc_stats::TableStats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated skewed relation: `hot_share` of the rows carry one hot
/// value, the rest spread geometrically over `cold` distinct values.
fn skewed_rows(n: usize, hot_permille: u64, cold: i64, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let b = if rng.gen_range(0..1000) < hot_permille {
                0
            } else {
                1 + rng.gen_range(0..cold.max(1))
            };
            vec![Value::Int(i as i64), Value::Int(b)]
        })
        .collect()
}

/// True frequency of `value` in column `col`.
fn true_count(rows: &[Vec<Value>], col: usize, value: &Value) -> usize {
    rows.iter().filter(|r| &r[col] == value).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The distinct sketch is within a factor 2 of the truth on skewed
    /// data, at and beyond the exact-sampling cap.
    #[test]
    fn distinct_within_factor_two(
        seed in 0u64..200,
        n in 100usize..12_000,
        cold in 3i64..500,
    ) {
        let rows = skewed_rows(n, 500, cold, seed);
        let ts = TableStats::analyze(2, &rows);
        let truth: std::collections::HashSet<i64> = rows
            .iter()
            .filter_map(|r| r[1].as_i64())
            .collect();
        let truth = truth.len() as f64;
        let est = ts.distinct_cols(&[1]) as f64;
        prop_assert!(
            est <= truth * 2.0 && est >= truth / 2.0,
            "distinct est {est} vs truth {truth} (n={n}, cold={cold})"
        );
    }

    /// MCV-backed equality selectivity on the hot value is within a
    /// factor 1.5 of the measured frequency, and the cold-value estimate
    /// does not inherit the hot value's weight (the uniform-assumption
    /// failure this subsystem exists to fix).
    #[test]
    fn mcv_selectivity_is_frequency_aware(
        seed in 0u64..200,
        n in 200usize..6_000,
        hot_permille in 300u64..900,
        cold in 20i64..300,
    ) {
        let rows = skewed_rows(n, hot_permille, cold, seed);
        let ts = TableStats::analyze(2, &rows);
        let hot_truth = true_count(&rows, 1, &Value::Int(0)) as f64 / n as f64;
        prop_assume!(hot_truth > 0.1);
        let hot_est = ts.columns[1].eq_selectivity(&Value::Int(0));
        prop_assert!(
            hot_est <= hot_truth * 1.5 && hot_est >= hot_truth / 1.5,
            "hot est {hot_est} vs truth {hot_truth}"
        );
        // Any cold value: its true frequency is far below the hot one;
        // the estimate must stay in the cold regime (strictly below half
        // the hot share) instead of averaging the skew away.
        let cold_est = ts.columns[1].eq_selectivity(&Value::Int(1));
        prop_assert!(
            cold_est < hot_truth / 2.0,
            "cold est {cold_est} vs hot truth {hot_truth}"
        );
    }

    /// Histogram range estimates over the unique column are within one
    /// bucket (±1/32) plus sketch slack of the true fraction.
    #[test]
    fn histogram_range_within_a_bucket(
        seed in 0u64..200,
        n in 100usize..6_000,
        cut_permille in 0u64..1000,
    ) {
        let rows = skewed_rows(n, 500, 50, seed);
        let ts = TableStats::analyze(2, &rows);
        let cut = (n as u64 * cut_permille / 1000) as i64;
        let truth = rows
            .iter()
            .filter(|r| r[0].as_i64().is_some_and(|a| a > cut))
            .count() as f64
            / n as f64;
        let est = ts.selectivity(0, CmpOp::Gt, &Value::Int(cut)).unwrap();
        prop_assert!(
            (est - truth).abs() <= 1.0 / 32.0 + 0.02,
            "gt {cut} est {est} vs truth {truth} (n={n})"
        );
    }

    /// Correlated multi-column keys are capped by the row-distinct bound:
    /// the estimate never exceeds twice the true pair count even when the
    /// independence product is off by orders of magnitude.
    #[test]
    fn correlated_pairs_stay_bounded(
        seed in 0u64..200,
        n in 100usize..6_000,
    ) {
        // B is a pure function of A: true pair-distinct == distinct(A).
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                let a = rng.gen_range(0..200i64);
                vec![Value::Int(a), Value::Int(a % 7)]
            })
            .collect();
        let ts = TableStats::analyze(2, &rows);
        let truth: std::collections::HashSet<(i64, i64)> = rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        let truth = truth.len() as f64;
        let est = ts.distinct_cols(&[0, 1]) as f64;
        prop_assert!(
            est <= truth * 2.0 && est >= truth / 2.0,
            "pair distinct est {est} vs truth {truth} (product would be ~{})",
            ts.distinct_cols(&[0]) * ts.distinct_cols(&[1])
        );
    }
}
