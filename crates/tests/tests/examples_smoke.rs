//! Workspace smoke test: every runnable example must build, run, and exit 0.
//!
//! The examples are the paper's end-to-end walkthroughs (quickstart, the
//! count bug, the rosetta stone, matrix multiplication, NL2SQL
//! validation); breaking one silently would invalidate the README. Each is
//! executed through `cargo run --example` so the test exercises exactly
//! what a reader would type.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "count_bug",
    "rosetta_stone",
    "matrix_multiplication",
    "nl2sql_validation",
];

fn run_example(name: &str) -> std::process::Output {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    Command::new(cargo)
        .args(["run", "--quiet", "-p", "arc-examples", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"))
}

#[test]
fn all_examples_run_to_completion() {
    for name in EXAMPLES {
        let out = run_example(name);
        assert!(
            out.status.success(),
            "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example `{name}` printed nothing; examples must narrate what they demonstrate"
        );
    }
}
