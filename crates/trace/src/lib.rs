//! # arc-trace — runtime introspection for ARC
//!
//! PR 2's `EXPLAIN` renders what the planner *intends* (`est=N` per
//! operator); this crate records what execution *actually did*. It is the
//! repo's first cross-cutting observability layer and has two halves:
//!
//! * [`registry`] — a process-wide metrics registry of **named monotonic
//!   counters** and **duration histograms**. Counters are plain relaxed
//!   atomics and always on (they are how the workspace's counter-delta
//!   tests observe planner/cache/semi-join behavior); the *expensive*
//!   instrumentation — reading clocks — hides behind a single
//!   `AtomicBool` load ([`enabled`]), so `ARC_TRACE=off` (the default)
//!   costs one branch per timed region.
//! * [`profile`] — **per-query execution profiles**: per-operator actual
//!   input/output rows, invocation counts and wall time, keyed by the
//!   stable operator ids that `arc-plan` assigns at lowering time, plus
//!   per-worker busy/morsel accounting from `arc-exec`. The engine's
//!   `explain_analyze_*` renders these against the planner's estimates
//!   as `act=N (est=N, q=X.X)` q-error annotations.
//!
//! The crate depends only on `arc-core` (for [`arc_core::json`]
//! serialization of snapshots and profiles) and sits below `arc-plan`,
//! `arc-exec`, and `arc-engine` in the workspace dependency order.

#![warn(missing_docs)]

pub mod profile;
pub mod registry;

pub use profile::{OpId, OpStats, ProfileSink, QueryProfile, WorkerLane};
pub use registry::{
    counter, enabled, histogram, maybe_now, record_since, reset, set_enabled, snapshot, Counter,
    Histogram, Snapshot,
};

/// Interpret an `ARC_TRACE` environment value. Unlike the engine's other
/// knobs, the default is **off**: tracing is opt-in, so the untraced hot
/// path pays only the [`enabled`] atomic-load guard.
///
/// This is the pure core (unit-testable without touching the process
/// environment, which is racy under parallel tests); the engine wraps it
/// in `trace_from_env`, surfacing a malformed value as a deferred config
/// error on first evaluation, exactly like `ARC_PLAN`/`ARC_VECTOR`.
pub fn parse_trace(value: Option<&str>) -> Result<bool, String> {
    match value.map(|v| v.to_lowercase().replace('_', "-")) {
        None => Ok(false),
        Some(v) => match v.as_str() {
            "on" | "1" | "true" | "auto" => Ok(true),
            "" | "off" | "0" | "false" | "no" => Ok(false),
            other => Err(format!(
                "unknown ARC_TRACE `{other}` (expected `on` or `off`)"
            )),
        },
    }
}

/// [`parse_trace`] over the live `ARC_TRACE` environment variable.
/// Returns the descriptive error string for the caller to wrap in its own
/// config-error type.
pub fn trace_env() -> Result<bool, String> {
    parse_trace(std::env::var("ARC_TRACE").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_defaults_off_and_parses_like_the_other_knobs() {
        assert_eq!(parse_trace(None), Ok(false));
        assert_eq!(parse_trace(Some("")), Ok(false));
        assert_eq!(parse_trace(Some("on")), Ok(true));
        assert_eq!(parse_trace(Some("1")), Ok(true));
        assert_eq!(parse_trace(Some("TRUE")), Ok(true));
        assert_eq!(parse_trace(Some("off")), Ok(false));
        assert_eq!(parse_trace(Some("0")), Ok(false));
        let err = parse_trace(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_TRACE"), "{err}");
    }
}
