//! # arc-trace — runtime introspection for ARC
//!
//! PR 2's `EXPLAIN` renders what the planner *intends* (`est=N` per
//! operator); this crate records what execution *actually did*. It is the
//! repo's first cross-cutting observability layer and has two halves:
//!
//! * [`registry`] — a process-wide metrics registry of **named monotonic
//!   counters** and **duration histograms**. Counters are plain relaxed
//!   atomics and always on (they are how the workspace's counter-delta
//!   tests observe planner/cache/semi-join behavior); the *expensive*
//!   instrumentation — reading clocks — hides behind a single
//!   `AtomicBool` load ([`enabled`]), so `ARC_TRACE=off` (the default)
//!   costs one branch per timed region.
//! * [`profile`] — **per-query execution profiles**: per-operator actual
//!   input/output rows, invocation counts and wall time, keyed by the
//!   stable operator ids that `arc-plan` assigns at lowering time, plus
//!   per-worker busy/morsel accounting from `arc-exec`. The engine's
//!   `explain_analyze_*` renders these against the planner's estimates
//!   as `act=N (est=N, q=X.X)` q-error annotations.
//!
//! v2 adds two more layers on the same operator-id spine:
//!
//! * [`span`] + [`trace_json`] — **hierarchical execution spans** (query
//!   → plan → scope → semi-join build → step → morsel) recorded into
//!   bounded per-lane ring buffers behind the `ARC_SPANS` knob (default
//!   off), exported as Chrome Trace Event Format JSON that Perfetto /
//!   `chrome://tracing` render as a per-query timeline.
//! * [`quantile`] — **always-on latency quantile histograms** (fixed
//!   128 log buckets, relaxed atomics, mergeable snapshots) at the
//!   per-query and per-morsel seams, surfaced as p50/p95/p99 through
//!   [`registry::metrics_text`]'s Prometheus-style exposition.
//!
//! The crate depends only on `arc-core` (for [`arc_core::json`]
//! serialization of snapshots and profiles) and sits below `arc-plan`,
//! `arc-exec`, and `arc-engine` in the workspace dependency order.

#![warn(missing_docs)]

pub mod profile;
pub mod quantile;
pub mod registry;
pub mod span;
pub mod trace_json;

pub use profile::{OpId, OpStats, ProfileSink, QueryProfile, WorkerLane};
pub use quantile::{QuantileHistogram, QuantileSnapshot, QUANTILE_BUCKETS};
pub use registry::{
    counter, enabled, histogram, maybe_now, metrics_text, quantile_histogram, record_since, reset,
    set_enabled, snapshot, validate_metric_names, Counter, Histogram, Snapshot,
};
pub use span::{Span, SpanKind, SpanSink, SpanTrace, LANE_CAPACITY};
pub use trace_json::{chrome_trace, op_key};

/// Interpret an `ARC_TRACE` environment value. Unlike the engine's other
/// knobs, the default is **off**: tracing is opt-in, so the untraced hot
/// path pays only the [`enabled`] atomic-load guard.
///
/// This is the pure core (unit-testable without touching the process
/// environment, which is racy under parallel tests); the engine wraps it
/// in `trace_from_env`, surfacing a malformed value as a deferred config
/// error on first evaluation, exactly like `ARC_PLAN`/`ARC_VECTOR`.
pub fn parse_trace(value: Option<&str>) -> Result<bool, String> {
    match value.map(|v| v.to_lowercase().replace('_', "-")) {
        None => Ok(false),
        Some(v) => match v.as_str() {
            "on" | "1" | "true" | "auto" => Ok(true),
            "" | "off" | "0" | "false" | "no" => Ok(false),
            other => Err(format!(
                "unknown ARC_TRACE `{other}` (expected `on` or `off`)"
            )),
        },
    }
}

/// [`parse_trace`] over the live `ARC_TRACE` environment variable.
/// Returns the descriptive error string for the caller to wrap in its own
/// config-error type.
pub fn trace_env() -> Result<bool, String> {
    parse_trace(std::env::var("ARC_TRACE").ok().as_deref())
}

/// Interpret an `ARC_SPANS` environment value: the span-recording knob,
/// default **off** like `ARC_TRACE` (spans read two clocks per region —
/// strictly more expensive than the counter layer). Same pure-core /
/// deferred-error split as [`parse_trace`].
pub fn parse_spans(value: Option<&str>) -> Result<bool, String> {
    match value.map(|v| v.to_lowercase().replace('_', "-")) {
        None => Ok(false),
        Some(v) => match v.as_str() {
            "on" | "1" | "true" | "auto" => Ok(true),
            "" | "off" | "0" | "false" | "no" => Ok(false),
            other => Err(format!(
                "unknown ARC_SPANS `{other}` (expected `on` or `off`)"
            )),
        },
    }
}

/// [`parse_spans`] over the live `ARC_SPANS` environment variable.
pub fn spans_env() -> Result<bool, String> {
    parse_spans(std::env::var("ARC_SPANS").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_defaults_off_and_parses_like_the_other_knobs() {
        assert_eq!(parse_trace(None), Ok(false));
        assert_eq!(parse_trace(Some("")), Ok(false));
        assert_eq!(parse_trace(Some("on")), Ok(true));
        assert_eq!(parse_trace(Some("1")), Ok(true));
        assert_eq!(parse_trace(Some("TRUE")), Ok(true));
        assert_eq!(parse_trace(Some("off")), Ok(false));
        assert_eq!(parse_trace(Some("0")), Ok(false));
        let err = parse_trace(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_TRACE"), "{err}");
    }

    #[test]
    fn spans_default_off_and_parse_like_trace() {
        assert_eq!(parse_spans(None), Ok(false));
        assert_eq!(parse_spans(Some("")), Ok(false));
        assert_eq!(parse_spans(Some("on")), Ok(true));
        assert_eq!(parse_spans(Some("1")), Ok(true));
        assert_eq!(parse_spans(Some("TRUE")), Ok(true));
        assert_eq!(parse_spans(Some("off")), Ok(false));
        assert_eq!(parse_spans(Some("no")), Ok(false));
        let err = parse_spans(Some("bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("ARC_SPANS"), "{err}");
    }
}
