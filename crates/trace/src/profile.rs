//! Per-query execution profiles: what each plan operator *actually did*.
//!
//! `arc-plan` assigns every quantifier scope a **stable operator id** at
//! lowering time (the address of its binding slice — the same key the
//! engine's per-query plan cache and the decorrelation bail-out set
//! already use), and every join step inside a scope is identified by its
//! plan-order position. The engine threads a [`ProfileSink`] through its
//! evaluation context and through `arc-exec` worker seeds; each
//! enumeration call accumulates a local tally (plain integers, no
//! locking) and folds it into the sink **once per call / once per
//! morsel**, so the shared `Mutex` is touched at gather granularity, not
//! per row. Merging is commutative addition, which is why a profile
//! gathered across four workers equals the sequential one.
//!
//! The profile is intentionally engine-agnostic: ids, row counts, call
//! counts, nanoseconds. `arc-plan`'s analyze renderer joins it back to
//! the plan tree to print `act=N (est=N, q=X.X)` per operator.

use arc_core::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Stable identity of a profiled operator.
///
/// `scope` is the lowering-time scope id (binding-slice address). `step`
/// is `None` for the scope as a whole (its output = rows surviving every
/// binding and leaf filter) and `Some(i)` for the *i*-th join step in
/// **plan order** (the order EXPLAIN prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId {
    /// Lowering-time scope id.
    pub scope: usize,
    /// Plan-order step position within the scope, or `None` for the
    /// scope-level aggregate.
    pub step: Option<usize>,
}

impl OpId {
    /// The scope-level operator of scope `scope`.
    pub fn scope(scope: usize) -> OpId {
        OpId { scope, step: None }
    }

    /// Step `step` (plan order) of scope `scope`.
    pub fn step(scope: usize, step: usize) -> OpId {
        OpId {
            scope,
            step: Some(step),
        }
    }

    /// The semi/anti-join probe operator of scope `scope` (pseudo-step
    /// `usize::MAX`, which no plan can reach): kept distinct from
    /// [`OpId::scope`] so the probe-side actuals (`calls` = probes,
    /// `rows_in` = built keys, `rows_out` = hits, `nanos` = build time)
    /// never collide with the build pipeline's own scope-level stats —
    /// both derive from the same binding list, hence share `scope`.
    pub fn semi(scope: usize) -> OpId {
        OpId {
            scope,
            step: Some(usize::MAX),
        }
    }
}

/// Accumulated actuals for one operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Invocations: for a step, the number of upstream environments that
    /// entered it (= its actual input rows); for a scope, the number of
    /// times the scope was enumerated (1 for a top-level scope, once per
    /// outer row for a correlated one).
    pub calls: u64,
    /// Rows the operator's access path yielded *before* its pushed-down
    /// filters (candidates: hash-bucket entries, index-range survivors,
    /// scanned rows).
    pub rows_in: u64,
    /// Rows the operator emitted downstream (after pushed filters; for a
    /// scope, rows that survived the leaf — its actual output).
    pub rows_out: u64,
    /// Wall time attributed to the operator, in nanoseconds (zero unless
    /// tracing is enabled; scope-level time is inclusive of its steps and
    /// sums worker-local busy time when partitioned).
    pub nanos: u64,
}

impl OpStats {
    /// Fold `other` into `self` (commutative, associative — worker-merge
    /// order cannot matter).
    pub fn merge(&mut self, other: &OpStats) {
        self.calls += other.calls;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.nanos += other.nanos;
    }
}

/// Per-worker accounting from the morsel executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLane {
    /// Morsels this worker lane executed.
    pub morsels: u64,
    /// Wall time this lane spent executing morsels, in nanoseconds (zero
    /// unless tracing is enabled).
    pub busy_nanos: u64,
}

/// A complete per-query execution profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Actuals per operator.
    pub ops: BTreeMap<OpId, OpStats>,
    /// Per-worker-lane accounting (index = lane id; lane 0 is the
    /// coordinator on the sequential path).
    pub workers: Vec<WorkerLane>,
}

impl QueryProfile {
    /// Actuals for `id`, if the operator ran.
    pub fn op(&self, id: OpId) -> Option<&OpStats> {
        self.ops.get(&id)
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &QueryProfile) {
        for (id, stats) in &other.ops {
            self.ops.entry(*id).or_default().merge(stats);
        }
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerLane::default());
        }
        for (lane, w) in other.workers.iter().enumerate() {
            self.workers[lane].morsels += w.morsels;
            self.workers[lane].busy_nanos += w.busy_nanos;
        }
    }

    /// Serialize as a canonical JSON object. Operator ids are rendered as
    /// `"scope/step"` strings (`"140231.../2"`, `"140231.../-"` for the
    /// scope level) — stable within a process run, which is what bench
    /// output needs.
    pub fn to_json(&self) -> Json {
        let ops = Json::Obj(
            self.ops
                .iter()
                .map(|(id, s)| {
                    let key = match id.step {
                        Some(i) => format!("{}/{}", id.scope, i),
                        None => format!("{}/-", id.scope),
                    };
                    (
                        key,
                        Json::obj([
                            ("calls", Json::Int(s.calls as i64)),
                            ("rows_in", Json::Int(s.rows_in as i64)),
                            ("rows_out", Json::Int(s.rows_out as i64)),
                            ("nanos", Json::Int(s.nanos as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        let workers = Json::Arr(
            self.workers
                .iter()
                .map(|w| {
                    Json::obj([
                        ("morsels", Json::Int(w.morsels as i64)),
                        ("busy_nanos", Json::Int(w.busy_nanos as i64)),
                    ])
                })
                .collect(),
        );
        Json::obj([("ops", ops), ("workers", workers)])
    }
}

/// Shared, cloneable handle to a query profile under construction.
///
/// Cloning shares the underlying profile (it is an `Arc`); the engine's
/// worker seeds clone the coordinator's sink so morsel tallies from every
/// worker merge into one profile at gather time.
#[derive(Debug, Clone, Default)]
pub struct ProfileSink(Arc<Mutex<QueryProfile>>);

impl ProfileSink {
    /// A fresh, empty sink.
    pub fn new() -> ProfileSink {
        ProfileSink::default()
    }

    /// Lock the profile, recovering from a poisoned mutex. A worker that
    /// panicked mid-merge leaves the profile with, at worst, one partial
    /// tally — counters only ever add, so the gathered numbers stay
    /// usable. The poison is cleared so later locks take the fast path.
    fn lock(&self) -> std::sync::MutexGuard<'_, QueryProfile> {
        self.0.lock().unwrap_or_else(|poisoned| {
            self.0.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Fold a locally-accumulated partial profile in. Called once per
    /// enumeration call / per morsel — never per row.
    pub fn merge(&self, partial: &QueryProfile) {
        self.lock().merge(partial);
    }

    /// Fold actuals for a single operator in.
    pub fn merge_op(&self, id: OpId, stats: OpStats) {
        self.lock().ops.entry(id).or_default().merge(&stats);
    }

    /// Record morsel/busy accounting for a worker lane.
    pub fn record_lane(&self, lane: usize, morsels: u64, busy_nanos: u64) {
        let mut p = self.lock();
        if p.workers.len() <= lane {
            p.workers.resize(lane + 1, WorkerLane::default());
        }
        p.workers[lane].morsels += morsels;
        p.workers[lane].busy_nanos += busy_nanos;
    }

    /// Copy out the profile as gathered so far.
    pub fn finish(&self) -> QueryProfile {
        self.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_addition() {
        let sink = ProfileSink::new();
        // Two "workers" merge partial tallies for the same operator.
        let id = OpId::step(0xabc, 1);
        sink.merge_op(
            id,
            OpStats {
                calls: 3,
                rows_in: 10,
                rows_out: 4,
                nanos: 100,
            },
        );
        sink.merge_op(
            id,
            OpStats {
                calls: 2,
                rows_in: 5,
                rows_out: 1,
                nanos: 50,
            },
        );
        sink.record_lane(1, 4, 1000);
        sink.record_lane(0, 2, 500);
        let p = sink.finish();
        let s = p.op(id).unwrap();
        assert_eq!((s.calls, s.rows_in, s.rows_out, s.nanos), (5, 15, 5, 150));
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.workers[1].morsels, 4);
        assert_eq!(p.workers[0].busy_nanos, 500);
    }

    #[test]
    fn poisoned_sink_recovers_and_keeps_tallies() {
        let sink = ProfileSink::new();
        let id = OpId::step(1, 0);
        sink.merge_op(
            id,
            OpStats {
                calls: 1,
                rows_in: 2,
                rows_out: 2,
                nanos: 10,
            },
        );
        // Poison the mutex: a worker panics while holding the lock.
        let clone = sink.clone();
        std::thread::spawn(move || {
            let _guard = clone.0.lock().unwrap();
            panic!("worker panicked mid-merge");
        })
        .join()
        .unwrap_err();
        assert!(sink.0.is_poisoned());
        // The sink keeps working and the pre-panic tallies survive.
        sink.merge_op(
            id,
            OpStats {
                calls: 1,
                rows_in: 3,
                rows_out: 1,
                nanos: 5,
            },
        );
        let p = sink.finish();
        let s = p.op(id).unwrap();
        assert_eq!((s.calls, s.rows_in, s.rows_out, s.nanos), (2, 5, 3, 15));
        assert!(!sink.0.is_poisoned(), "recovery clears the poison bit");
    }

    #[test]
    fn profiles_merge_across_sinks() {
        let mut a = QueryProfile::default();
        a.ops.insert(
            OpId::scope(7),
            OpStats {
                calls: 1,
                rows_in: 0,
                rows_out: 9,
                nanos: 0,
            },
        );
        let mut b = QueryProfile::default();
        b.ops.insert(
            OpId::scope(7),
            OpStats {
                calls: 1,
                rows_in: 0,
                rows_out: 3,
                nanos: 0,
            },
        );
        b.workers.push(WorkerLane {
            morsels: 1,
            busy_nanos: 10,
        });
        a.merge(&b);
        assert_eq!(a.op(OpId::scope(7)).unwrap().rows_out, 12);
        assert_eq!(a.workers.len(), 1);
    }

    #[test]
    fn profile_serializes_to_canonical_json() {
        let sink = ProfileSink::new();
        sink.merge_op(
            OpId::step(42, 0),
            OpStats {
                calls: 1,
                rows_in: 2,
                rows_out: 2,
                nanos: 0,
            },
        );
        sink.record_lane(0, 1, 0);
        let text = sink.finish().to_json().to_string();
        assert!(text.contains("\"42/0\""), "{text}");
        assert!(text.contains("\"rows_out\":2"), "{text}");
        assert!(text.contains("\"morsels\":1"), "{text}");
        arc_core::json::parse(&text).expect("profile JSON must reparse");
    }
}
