//! Always-on, mergeable latency quantile histograms (HDR-style
//! log-bucketing, fixed 128 buckets, relaxed atomics).
//!
//! The registry's duration [`Histogram`](crate::Histogram)s keep
//! count/sum/max — enough for averages, useless for tails. A
//! [`QuantileHistogram`] adds just enough bucket resolution to answer
//! p50/p95/p99 within a bounded relative error, while staying:
//!
//! * **cheap** — recording is four relaxed `fetch_add`s and one
//!   `fetch_max`, no locks, no allocation; always on at the per-query and
//!   per-morsel seams (which run once per query / per morsel, never per
//!   row);
//! * **mergeable** — buckets are plain counts, so snapshots merge by
//!   addition (associative and commutative: per-worker or per-window
//!   histograms fold into totals in any order);
//! * **bounded** — exactly [`QUANTILE_BUCKETS`] buckets regardless of the
//!   value range.
//!
//! ## Bucketing scheme
//!
//! Values 0–15 ns get exact unit buckets (indices 0–15). Above that, each
//! power-of-two octave is split in half by its next-highest bit — two
//! buckets per octave — giving a worst-case relative error of 25% (a
//! reported quantile is the floor of a bucket whose width is half an
//! octave). Values past the last bucket (≈ 2⁶⁰ ns ≈ 36 years) land in an
//! explicit overflow count that snapshots surface, so saturation is
//! visible rather than silently folded into the top bucket.

use arc_core::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of buckets in every quantile histogram.
pub const QUANTILE_BUCKETS: usize = 128;

/// Process-wide recording gate, **on by default** (this layer is the
/// always-on half of arc-trace v2). Exists so the ablation benchmark can
/// price the layer; not wired to any environment knob.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Is quantile recording on? Callers that pay a clock read to feed a
/// histogram should check this first.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Toggle quantile recording process-wide (bench/ablation use only).
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Bucket index for a nanosecond value, or `None` for overflow.
#[inline]
fn bucket_index(nanos: u64) -> Option<usize> {
    if nanos < 16 {
        return Some(nanos as usize);
    }
    let octave = nanos.ilog2() as usize; // >= 4
    let half = ((nanos >> (octave - 1)) & 1) as usize;
    let idx = 16 + (octave - 4) * 2 + half;
    (idx < QUANTILE_BUCKETS).then_some(idx)
}

/// Smallest value that lands in bucket `idx` — the representative a
/// quantile query reports.
pub fn bucket_floor(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let k = idx - 16;
    let octave = 4 + k / 2;
    let base = 1u64 << octave;
    if k.is_multiple_of(2) {
        base
    } else {
        base | (base >> 1)
    }
}

/// Backing storage for a quantile histogram (the leaked registry cell).
pub(crate) struct QuantileCell {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
    overflow: AtomicU64,
    buckets: [AtomicU64; QUANTILE_BUCKETS],
}

impl QuantileCell {
    pub(crate) fn new() -> QuantileCell {
        QuantileCell {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; QUANTILE_BUCKETS],
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> QuantileSnapshot {
        QuantileSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A named latency quantile histogram. `Copy` handle to a leaked cell,
/// like [`Counter`](crate::Counter); obtain one from
/// [`quantile_histogram`](crate::registry::quantile_histogram).
#[derive(Clone, Copy)]
pub struct QuantileHistogram(pub(crate) &'static QuantileCell);

impl QuantileHistogram {
    /// Record one observation of `nanos` nanoseconds (relaxed atomics;
    /// honors the process [`recording`] gate).
    #[inline]
    pub fn record_nanos(self, nanos: u64) {
        if !recording() {
            return;
        }
        let cell = self.0;
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        match bucket_index(nanos) {
            Some(idx) => {
                cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                cell.overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the full bucket state.
    pub fn snapshot(self) -> QuantileSnapshot {
        self.0.snapshot()
    }
}

/// Owned bucket state of a quantile histogram: the mergeable,
/// quantile-queryable value type snapshots and diffs work over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values, nanoseconds.
    pub sum_nanos: u64,
    /// Largest observed value, nanoseconds.
    pub max_nanos: u64,
    /// Observations past the last bucket (saturation — nonzero means the
    /// top quantiles are floor-reported from `max_nanos`).
    pub overflow: u64,
    /// Per-bucket counts, [`QUANTILE_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl Default for QuantileSnapshot {
    fn default() -> QuantileSnapshot {
        QuantileSnapshot {
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
            overflow: 0,
            buckets: vec![0; QUANTILE_BUCKETS],
        }
    }
}

impl QuantileSnapshot {
    /// Record into an owned snapshot (plain arithmetic — used by tests
    /// and by anything accumulating off the hot path).
    pub fn record_nanos(&mut self, nanos: u64) {
        self.count += 1;
        // Saturating: min(MAX, Σ) is order-independent, so merge stays
        // associative even once a sum pins at the ceiling.
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        match bucket_index(nanos) {
            Some(idx) => self.buckets[idx] += 1,
            None => self.overflow += 1,
        }
    }

    /// Fold `other` in. Addition bucket-by-bucket: associative and
    /// commutative, so per-worker histograms merge in any order.
    pub fn merge(&mut self, other: &QuantileSnapshot) {
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        self.overflow += other.overflow;
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// The change from `earlier` to `self` (saturating, like
    /// [`Snapshot::diff`](crate::Snapshot::diff); `max_nanos` carries the
    /// later value).
    pub fn diff(&self, earlier: &QuantileSnapshot) -> QuantileSnapshot {
        QuantileSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum_nanos: self.sum_nanos.saturating_sub(earlier.sum_nanos),
            max_nanos: self.max_nanos,
            overflow: self.overflow.saturating_sub(earlier.overflow),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the floor of the
    /// bucket containing the ceil(q·count)-th observation. Returns 0 on
    /// an empty histogram; ranks that fall into the overflow count report
    /// `max_nanos`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max_nanos
    }

    /// Serialize as a canonical JSON object (`buckets` trailing zeros are
    /// elided to keep exposition output compact).
    pub fn to_json(&self) -> Json {
        let last = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        Json::obj([
            ("count", Json::Int(self.count as i64)),
            ("sum_nanos", Json::Int(self.sum_nanos as i64)),
            ("max_nanos", Json::Int(self.max_nanos as i64)),
            ("overflow", Json::Int(self.overflow as i64)),
            ("p50", Json::Int(self.quantile(0.5) as i64)),
            ("p95", Json::Int(self.quantile(0.95) as i64)),
            ("p99", Json::Int(self.quantile(0.99) as i64)),
            (
                "buckets",
                Json::Arr(
                    self.buckets[..last]
                        .iter()
                        .map(|&b| Json::Int(b as i64))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_invert() {
        let mut prev = None;
        for idx in 0..QUANTILE_BUCKETS {
            let floor = bucket_floor(idx);
            if let Some(p) = prev {
                assert!(floor > p, "floors must strictly increase at {idx}");
            }
            prev = Some(floor);
            // The floor of a bucket lands back in that bucket.
            assert_eq!(bucket_index(floor), Some(idx), "floor {floor} idx {idx}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Every value maps to a bucket whose floor is within 25% below.
        for &v in &[17u64, 100, 999, 4096, 65_535, 1_000_000, u64::pow(2, 40)] {
            let idx = bucket_index(v).unwrap();
            let floor = bucket_floor(idx);
            assert!(floor <= v);
            assert!(
                (v - floor) as f64 / v as f64 <= 0.25 + 1e-9,
                "value {v} floor {floor}"
            );
        }
    }

    #[test]
    fn overflow_is_explicit() {
        let mut s = QuantileSnapshot::default();
        s.record_nanos(u64::MAX);
        s.record_nanos(5);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 2);
        // The overflow rank reports max, not a bucket floor.
        assert_eq!(s.quantile(1.0), u64::MAX);
        assert_eq!(s.quantile(0.25), 5);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut s = QuantileSnapshot::default();
            for &v in vals {
                s.record_nanos(v);
            }
            s
        };
        let a = mk(&[1, 50, 3000]);
        let b = mk(&[7, 7, 1_000_000]);
        let c = mk(&[0, u64::MAX]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // And merging equals recording everything into one histogram.
        assert_eq!(ab_c, mk(&[1, 50, 3000, 7, 7, 1_000_000, 0, u64::MAX]));
    }

    #[test]
    fn known_distribution_quantiles_within_one_bucket() {
        // Uniform 1..=1000 ns: p50 = 500, p95 = 950, p99 = 990.
        let mut s = QuantileSnapshot::default();
        for v in 1..=1000u64 {
            s.record_nanos(v);
        }
        for (q, exact) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let got = s.quantile(q);
            let idx = bucket_index(exact).unwrap();
            // Within one bucket of the exact value: the reported floor is
            // the exact value's bucket or an adjacent one.
            let got_idx = bucket_index(got).unwrap();
            assert!(
                got_idx.abs_diff(idx) <= 1,
                "q={q} exact={exact} got={got} (bucket {got_idx} vs {idx})"
            );
            // And never above the exact value's bucket ceiling.
            assert!(got <= exact, "quantile floor must not exceed exact rank");
        }
        assert_eq!(s.quantile(0.0), bucket_floor(bucket_index(1).unwrap()));
        assert_eq!(s.quantile(1.0), bucket_floor(bucket_index(1000).unwrap()));
    }

    #[test]
    fn diff_isolates_a_window() {
        let mut s = QuantileSnapshot::default();
        s.record_nanos(10);
        let before = s.clone();
        s.record_nanos(100);
        s.record_nanos(100);
        let d = s.diff(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_nanos, 200);
        assert_eq!(d.quantile(0.5), bucket_floor(bucket_index(100).unwrap()));
    }

    #[test]
    fn snapshot_json_reparses() {
        let mut s = QuantileSnapshot::default();
        for v in [3u64, 47, 4097] {
            s.record_nanos(v);
        }
        let text = s.to_json().to_string();
        assert!(text.contains("\"p50\""), "{text}");
        assert!(text.contains("\"overflow\":0"), "{text}");
        arc_core::json::parse(&text).expect("quantile JSON must reparse");
    }

    #[test]
    fn recording_gate_stops_the_hot_path() {
        // Owned snapshots ignore the gate; only the atomic handle honors
        // it (exercised via the registry in registry tests). Here: the
        // gate itself flips and restores.
        let was = recording();
        set_recording(false);
        assert!(!recording());
        set_recording(true);
        assert!(recording());
        set_recording(was);
    }
}
