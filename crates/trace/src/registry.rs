//! The process-wide metrics registry: named monotonic counters and
//! duration histograms, with snapshot/reset/diff and JSON serialization.
//!
//! ## Design
//!
//! A metric is registered on first use ([`counter`]/[`histogram`]) and
//! lives for the process lifetime (`Box::leak` — the registry is a small
//! fixed vocabulary of names, not per-query state). Handles are `Copy`
//! references to leaked atomics, so the increment path is a single
//! relaxed `fetch_add` with no locking; the registry's `Mutex` is touched
//! only at registration and snapshot time.
//!
//! Counters are **always on**: the workspace's counter-delta tests (plan
//! cache, semi-join builds) observe them without `ARC_TRACE`, and a
//! relaxed add on an out-of-line cache/build path is already in the
//! noise. What the [`enabled`] gate guards is *clock reads*: call
//! [`maybe_now`] at a region start and [`record_since`] at its end, and
//! the disabled path costs one atomic load and two branches.
//!
//! ## Racing tests
//!
//! Process-global counters under a multi-threaded test runner can only
//! *grow* between two reads. Delta assertions therefore either pin an
//! exact zero ("this path must not run") — still sound, concurrent
//! increments would only make the test fail loudly — or assert an upper
//! bound over a [`Snapshot`] diff taken around the region of interest.
//! [`Snapshot::diff`] is saturating, so a reset racing a reader never
//! underflows.

use arc_core::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The enabled gate
// ---------------------------------------------------------------------------

/// Tracing gate: seeded from `ARC_TRACE` on first read (a malformed value
/// seeds `false` here; the *engine* surfaces the parse error as a config
/// error), overridable with [`set_enabled`].
static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn enabled_cell() -> &'static AtomicBool {
    ENABLED.get_or_init(|| AtomicBool::new(crate::trace_env().unwrap_or(false)))
}

/// Is expensive instrumentation (wall-clock timing) on? A single relaxed
/// atomic load — the entire cost of the facade when tracing is off.
#[inline]
pub fn enabled() -> bool {
    enabled_cell().load(Ordering::Relaxed)
}

/// Override the tracing gate for this process (e.g. from
/// `Engine::with_trace`, or a test that wants timings regardless of the
/// environment).
pub fn set_enabled(on: bool) {
    enabled_cell().store(on, Ordering::Relaxed);
}

/// `Some(Instant::now())` when tracing is enabled, `None` otherwise — the
/// region-start half of the timing facade.
#[inline]
pub fn maybe_now() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Region-end half of the timing facade: record the elapsed time into
/// `hist` if [`maybe_now`] handed out a start. Returns the elapsed
/// nanoseconds when it recorded (callers that also fold the duration into
/// a per-query profile reuse it instead of reading the clock twice).
#[inline]
pub fn record_since(hist: Histogram, start: Option<Instant>) -> Option<u64> {
    let start = start?;
    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    hist.record_nanos(nanos);
    Some(nanos)
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named monotonic counter. `Copy` handle to a leaked atomic; cache it
/// in a `OnceLock` at the call site to skip the registry lookup.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Add `n` (relaxed; ordering between counters is not meaningful).
    #[inline]
    pub fn add(self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

const BUCKETS: usize = 64;

/// Backing storage for a duration histogram: power-of-two nanosecond
/// buckets (bucket *i* counts durations with `ilog2(nanos) == i`), plus
/// count/sum/max for exact averages.
struct HistogramCell {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

/// A named duration histogram. `Copy` handle, like [`Counter`].
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistogramCell);

impl Histogram {
    /// Record one observation of `nanos` nanoseconds.
    #[inline]
    pub fn record_nanos(self, nanos: u64) {
        let cell = self.0;
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let bucket = if nanos == 0 {
            0
        } else {
            nanos.ilog2() as usize
        };
        cell.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn sum_nanos(self) -> u64 {
        self.0.sum_nanos.load(Ordering::Relaxed)
    }

    /// Largest recorded duration, in nanoseconds.
    pub fn max_nanos(self) -> u64 {
        self.0.max_nanos.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

struct Registry {
    counters: BTreeMap<&'static str, &'static AtomicU64>,
    histograms: BTreeMap<&'static str, &'static HistogramCell>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    })
}

/// Get (registering on first use) the counter named `name`. Names are
/// dot-separated lowercase (`plan.cache.hit`); see the README metric
/// catalog.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = registry().lock().unwrap();
    let cell = reg
        .counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
    Counter(cell)
}

/// Get (registering on first use) the duration histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    let mut reg = registry().lock().unwrap();
    let cell = reg
        .histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(HistogramCell::new())));
    Histogram(cell)
}

// ---------------------------------------------------------------------------
// Snapshot / reset / diff
// ---------------------------------------------------------------------------

/// Point-in-time histogram statistics inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed durations, nanoseconds.
    pub sum_nanos: u64,
    /// Largest observed duration, nanoseconds.
    pub max_nanos: u64,
}

/// A point-in-time copy of every registered metric. Take one before a
/// region of interest and [`Snapshot::diff`] one taken after it to get
/// race-tolerant deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → (count, sum, max).
    pub histograms: BTreeMap<String, HistStats>,
}

impl Snapshot {
    /// The change from `earlier` to `self`, per metric. Saturating — a
    /// concurrent [`reset`] can make a later reading smaller, which
    /// clamps to zero instead of wrapping. `max_nanos` carries the later
    /// snapshot's value (maxima don't subtract meaningfully).
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let before = earlier.histograms.get(k).copied().unwrap_or_default();
                (
                    k.clone(),
                    HistStats {
                        count: v.count.saturating_sub(before.count),
                        sum_nanos: v.sum_nanos.saturating_sub(before.sum_nanos),
                        max_nanos: v.max_nanos,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Counter value by name (0 if absent — e.g. not yet registered when
    /// the snapshot was taken).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram stats by name (zeros if absent).
    pub fn hist(&self, name: &str) -> HistStats {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// Serialize as a canonical JSON object:
    /// `{"counters": {name: n, ...}, "histograms": {name: {"count": n,
    /// "sum_nanos": n, "max_nanos": n}, ...}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count", Json::Int(v.count as i64)),
                            ("sum_nanos", Json::Int(v.sum_nanos as i64)),
                            ("max_nanos", Json::Int(v.max_nanos as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([("counters", counters), ("histograms", histograms)])
    }
}

/// Copy every registered metric into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap();
    let counters = reg
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = reg
        .histograms
        .iter()
        .map(|(k, v)| {
            (
                k.to_string(),
                HistStats {
                    count: v.count.load(Ordering::Relaxed),
                    sum_nanos: v.sum_nanos.load(Ordering::Relaxed),
                    max_nanos: v.max_nanos.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    Snapshot {
        counters,
        histograms,
    }
}

/// Zero every registered metric. Tests should prefer [`Snapshot::diff`]
/// (reset is process-global and visible to concurrent tests); reset
/// exists for long-lived processes that want fresh windows.
pub fn reset() {
    let reg = registry().lock().unwrap();
    for v in reg.counters.values() {
        v.store(0, Ordering::Relaxed);
    }
    for v in reg.histograms.values() {
        v.count.store(0, Ordering::Relaxed);
        v.sum_nanos.store(0, Ordering::Relaxed);
        v.max_nanos.store(0, Ordering::Relaxed);
        for b in &v.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let c = counter("test.registry.alpha");
        let again = counter("test.registry.alpha");
        let before = c.get();
        c.inc();
        again.add(2);
        assert_eq!(c.get() - before, 3);
    }

    #[test]
    fn snapshot_diff_isolates_a_region() {
        let c = counter("test.registry.region");
        let before = snapshot();
        c.add(5);
        let delta = snapshot().diff(&before);
        assert_eq!(delta.counter("test.registry.region"), 5);
        // A metric absent from the earlier snapshot diffs against zero.
        assert_eq!(delta.counter("test.registry.never-touched"), 0);
    }

    #[test]
    fn histograms_track_count_sum_max() {
        let h = histogram("test.registry.hist");
        let before = snapshot();
        h.record_nanos(10);
        h.record_nanos(1000);
        h.record_nanos(0);
        let d = snapshot().diff(&before).hist("test.registry.hist");
        assert_eq!(d.count, 3);
        assert_eq!(d.sum_nanos, 1010);
        assert!(d.max_nanos >= 1000);
    }

    #[test]
    fn timing_facade_is_inert_when_disabled() {
        let h = histogram("test.registry.gated");
        let was = enabled();
        set_enabled(false);
        let before = h.count();
        let start = maybe_now();
        assert!(start.is_none());
        assert_eq!(record_since(h, start), None);
        assert_eq!(h.count(), before);

        set_enabled(true);
        let start = maybe_now();
        assert!(start.is_some());
        assert!(record_since(h, start).is_some());
        assert_eq!(h.count(), before + 1);
        set_enabled(was);
    }

    #[test]
    fn snapshot_serializes_to_canonical_json() {
        counter("test.registry.json").add(7);
        histogram("test.registry.json-hist").record_nanos(42);
        let j = snapshot().to_json();
        let text = j.to_string();
        assert!(text.contains("\"test.registry.json\":"), "{text}");
        assert!(text.contains("\"test.registry.json-hist\":"), "{text}");
        assert!(text.contains("\"sum_nanos\":"), "{text}");
        // Round-trips through the arc-core parser.
        arc_core::json::parse(&text).expect("snapshot JSON must reparse");
    }
}
