//! The process-wide metrics registry: named monotonic counters and
//! duration histograms, with snapshot/reset/diff and JSON serialization.
//!
//! ## Design
//!
//! A metric is registered on first use ([`counter`]/[`histogram`]) and
//! lives for the process lifetime (`Box::leak` — the registry is a small
//! fixed vocabulary of names, not per-query state). Handles are `Copy`
//! references to leaked atomics, so the increment path is a single
//! relaxed `fetch_add` with no locking; the registry's `Mutex` is touched
//! only at registration and snapshot time.
//!
//! Counters are **always on**: the workspace's counter-delta tests (plan
//! cache, semi-join builds) observe them without `ARC_TRACE`, and a
//! relaxed add on an out-of-line cache/build path is already in the
//! noise. What the [`enabled`] gate guards is *clock reads*: call
//! [`maybe_now`] at a region start and [`record_since`] at its end, and
//! the disabled path costs one atomic load and two branches.
//!
//! ## Racing tests
//!
//! Process-global counters under a multi-threaded test runner can only
//! *grow* between two reads. Delta assertions therefore either pin an
//! exact zero ("this path must not run") — still sound, concurrent
//! increments would only make the test fail loudly — or assert an upper
//! bound over a [`Snapshot`] diff taken around the region of interest.
//! [`Snapshot::diff`] is saturating, so a reset racing a reader never
//! underflows.

use crate::quantile::{QuantileCell, QuantileHistogram, QuantileSnapshot};
use arc_core::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The enabled gate
// ---------------------------------------------------------------------------

/// Tracing gate: seeded from `ARC_TRACE` on first read (a malformed value
/// seeds `false` here; the *engine* surfaces the parse error as a config
/// error), overridable with [`set_enabled`].
static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn enabled_cell() -> &'static AtomicBool {
    ENABLED.get_or_init(|| AtomicBool::new(crate::trace_env().unwrap_or(false)))
}

/// Is expensive instrumentation (wall-clock timing) on? A single relaxed
/// atomic load — the entire cost of the facade when tracing is off.
#[inline]
pub fn enabled() -> bool {
    enabled_cell().load(Ordering::Relaxed)
}

/// Override the tracing gate for this process (e.g. from
/// `Engine::with_trace`, or a test that wants timings regardless of the
/// environment).
pub fn set_enabled(on: bool) {
    enabled_cell().store(on, Ordering::Relaxed);
}

/// `Some(Instant::now())` when tracing is enabled, `None` otherwise — the
/// region-start half of the timing facade.
#[inline]
pub fn maybe_now() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Region-end half of the timing facade: record the elapsed time into
/// `hist` if [`maybe_now`] handed out a start. Returns the elapsed
/// nanoseconds when it recorded (callers that also fold the duration into
/// a per-query profile reuse it instead of reading the clock twice).
#[inline]
pub fn record_since(hist: Histogram, start: Option<Instant>) -> Option<u64> {
    let start = start?;
    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    hist.record_nanos(nanos);
    Some(nanos)
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named monotonic counter. `Copy` handle to a leaked atomic; cache it
/// in a `OnceLock` at the call site to skip the registry lookup.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Add `n` (relaxed; ordering between counters is not meaningful).
    #[inline]
    pub fn add(self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

const BUCKETS: usize = 64;

/// Backing storage for a duration histogram: power-of-two nanosecond
/// buckets (bucket *i* counts durations with `ilog2(nanos) == i`), plus
/// count/sum/max for exact averages.
struct HistogramCell {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

/// A named duration histogram. `Copy` handle, like [`Counter`].
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistogramCell);

impl Histogram {
    /// Record one observation of `nanos` nanoseconds.
    #[inline]
    pub fn record_nanos(self, nanos: u64) {
        let cell = self.0;
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let bucket = if nanos == 0 {
            0
        } else {
            nanos.ilog2() as usize
        };
        cell.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn sum_nanos(self) -> u64 {
        self.0.sum_nanos.load(Ordering::Relaxed)
    }

    /// Largest recorded duration, in nanoseconds.
    pub fn max_nanos(self) -> u64 {
        self.0.max_nanos.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

struct Registry {
    counters: BTreeMap<&'static str, &'static AtomicU64>,
    histograms: BTreeMap<&'static str, &'static HistogramCell>,
    quantiles: BTreeMap<&'static str, &'static QuantileCell>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            quantiles: BTreeMap::new(),
        })
    })
}

/// Get (registering on first use) the counter named `name`. Names are
/// dot-separated lowercase (`plan.cache.hit`); see the README metric
/// catalog.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = registry().lock().unwrap();
    let cell = reg
        .counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
    Counter(cell)
}

/// Get (registering on first use) the duration histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    let mut reg = registry().lock().unwrap();
    let cell = reg
        .histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(HistogramCell::new())));
    Histogram(cell)
}

/// Get (registering on first use) the latency quantile histogram named
/// `name`. Unlike duration [`Histogram`]s these are **always on** (no
/// `ARC_TRACE` gate) — they are the p50/p99 surface the exposition
/// endpoint scrapes — so attach them only at coarse seams (per query,
/// per morsel).
pub fn quantile_histogram(name: &'static str) -> QuantileHistogram {
    let mut reg = registry().lock().unwrap();
    let cell = reg
        .quantiles
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(QuantileCell::new())));
    QuantileHistogram(cell)
}

// ---------------------------------------------------------------------------
// Snapshot / reset / diff
// ---------------------------------------------------------------------------

/// Point-in-time histogram statistics inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed durations, nanoseconds.
    pub sum_nanos: u64,
    /// Largest observed duration, nanoseconds.
    pub max_nanos: u64,
}

/// A point-in-time copy of every registered metric. Take one before a
/// region of interest and [`Snapshot::diff`] one taken after it to get
/// race-tolerant deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → (count, sum, max).
    pub histograms: BTreeMap<String, HistStats>,
    /// Quantile histogram name → full bucket state (mergeable,
    /// quantile-queryable; overflow drops included).
    pub quantiles: BTreeMap<String, QuantileSnapshot>,
}

impl Snapshot {
    /// The change from `earlier` to `self`, per metric. Saturating — a
    /// concurrent [`reset`] can make a later reading smaller, which
    /// clamps to zero instead of wrapping. `max_nanos` carries the later
    /// snapshot's value (maxima don't subtract meaningfully).
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let before = earlier.histograms.get(k).copied().unwrap_or_default();
                (
                    k.clone(),
                    HistStats {
                        count: v.count.saturating_sub(before.count),
                        sum_nanos: v.sum_nanos.saturating_sub(before.sum_nanos),
                        max_nanos: v.max_nanos,
                    },
                )
            })
            .collect();
        let quantiles = self
            .quantiles
            .iter()
            .map(|(k, v)| {
                let before = earlier.quantiles.get(k).cloned().unwrap_or_default();
                (k.clone(), v.diff(&before))
            })
            .collect();
        Snapshot {
            counters,
            histograms,
            quantiles,
        }
    }

    /// Counter value by name (0 if absent — e.g. not yet registered when
    /// the snapshot was taken).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram stats by name (zeros if absent).
    pub fn hist(&self, name: &str) -> HistStats {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// Quantile histogram state by name (empty if absent).
    pub fn quantile(&self, name: &str) -> QuantileSnapshot {
        self.quantiles.get(name).cloned().unwrap_or_default()
    }

    /// Serialize as a canonical JSON object:
    /// `{"counters": {name: n, ...}, "histograms": {name: {"count": n,
    /// "sum_nanos": n, "max_nanos": n}, ...}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count", Json::Int(v.count as i64)),
                            ("sum_nanos", Json::Int(v.sum_nanos as i64)),
                            ("max_nanos", Json::Int(v.max_nanos as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        let quantiles = Json::Obj(
            self.quantiles
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("histograms", histograms),
            ("quantiles", quantiles),
        ])
    }

    /// Render every metric in Prometheus text exposition format. Metric
    /// names are the registry's dot-namespaced names with dots mapped to
    /// underscores under an `arc_` prefix (`plan.cache.hit` →
    /// `arc_plan_cache_hit`); quantile histograms export as summaries
    /// with `quantile="0.5"/"0.95"/"0.99"` labels. Deterministic order
    /// (the underlying maps are sorted).
    pub fn metrics_text(&self) -> String {
        fn mangle(name: &str) -> String {
            format!("arc_{}", name.replace('.', "_"))
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = mangle(name);
            out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let m = mangle(name);
            out.push_str(&format!(
                "# TYPE {m} summary\n{m}_count {}\n{m}_sum_nanos {}\n{m}_max_nanos {}\n",
                h.count, h.sum_nanos, h.max_nanos
            ));
        }
        for (name, q) in &self.quantiles {
            let m = mangle(name);
            out.push_str(&format!("# TYPE {m} summary\n"));
            for quant in [0.5, 0.95, 0.99] {
                out.push_str(&format!(
                    "{m}{{quantile=\"{quant}\"}} {}\n",
                    q.quantile(quant)
                ));
            }
            out.push_str(&format!(
                "{m}_count {}\n{m}_sum_nanos {}\n{m}_max_nanos {}\n{m}_overflow {}\n",
                q.count, q.sum_nanos, q.max_nanos, q.overflow
            ));
        }
        out
    }
}

/// Copy every registered metric into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap();
    let counters = reg
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = reg
        .histograms
        .iter()
        .map(|(k, v)| {
            (
                k.to_string(),
                HistStats {
                    count: v.count.load(Ordering::Relaxed),
                    sum_nanos: v.sum_nanos.load(Ordering::Relaxed),
                    max_nanos: v.max_nanos.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    let quantiles = reg
        .quantiles
        .iter()
        .map(|(k, v)| (k.to_string(), v.snapshot()))
        .collect();
    Snapshot {
        counters,
        histograms,
        quantiles,
    }
}

/// Zero every registered metric. Tests should prefer [`Snapshot::diff`]
/// (reset is process-global and visible to concurrent tests); reset
/// exists for long-lived processes that want fresh windows.
pub fn reset() {
    let reg = registry().lock().unwrap();
    for v in reg.counters.values() {
        v.store(0, Ordering::Relaxed);
    }
    for v in reg.histograms.values() {
        v.count.store(0, Ordering::Relaxed);
        v.sum_nanos.store(0, Ordering::Relaxed);
        v.max_nanos.store(0, Ordering::Relaxed);
        for b in &v.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    for v in reg.quantiles.values() {
        v.reset();
    }
}

/// Render every registered metric in Prometheus text exposition format
/// (a live-registry shorthand for [`Snapshot::metrics_text`]).
pub fn metrics_text() -> String {
    snapshot().metrics_text()
}

/// Lint every registered metric name: dot-namespaced (at least two
/// segments), snake_case segments (`[a-z][a-z0-9_]*`), and unique across
/// metric kinds — the contract that keeps [`metrics_text`] output
/// machine-scrapable (names mangle injectively to `arc_*`). Returns a
/// message naming every offender. CI runs this as a unit test after the
/// full workspace vocabulary has registered.
pub fn validate_metric_names() -> Result<(), String> {
    let reg = registry().lock().unwrap();
    let mut problems = Vec::new();
    let mut seen: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    let all = reg
        .counters
        .keys()
        .map(|k| (*k, "counter"))
        .chain(reg.histograms.keys().map(|k| (*k, "histogram")))
        .chain(reg.quantiles.keys().map(|k| (*k, "quantile")));
    for (name, kind) in all {
        if !name_well_formed(name) {
            problems.push(format!(
                "`{name}` ({kind}) is not dot-namespaced snake_case"
            ));
        }
        if let Some(prior) = seen.insert(name, kind) {
            problems.push(format!("`{name}` registered as both {prior} and {kind}"));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("; "))
    }
}

/// Is `name` dot-namespaced snake_case (`seg.seg[.seg...]`, each segment
/// `[a-z][a-z0-9_]*`)?
fn name_well_formed(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let c = counter("test.registry.alpha");
        let again = counter("test.registry.alpha");
        let before = c.get();
        c.inc();
        again.add(2);
        assert_eq!(c.get() - before, 3);
    }

    #[test]
    fn snapshot_diff_isolates_a_region() {
        let c = counter("test.registry.region");
        let before = snapshot();
        c.add(5);
        let delta = snapshot().diff(&before);
        assert_eq!(delta.counter("test.registry.region"), 5);
        // A metric absent from the earlier snapshot diffs against zero.
        assert_eq!(delta.counter("test.registry.never-touched"), 0);
    }

    #[test]
    fn histograms_track_count_sum_max() {
        let h = histogram("test.registry.hist");
        let before = snapshot();
        h.record_nanos(10);
        h.record_nanos(1000);
        h.record_nanos(0);
        let d = snapshot().diff(&before).hist("test.registry.hist");
        assert_eq!(d.count, 3);
        assert_eq!(d.sum_nanos, 1010);
        assert!(d.max_nanos >= 1000);
    }

    #[test]
    fn timing_facade_is_inert_when_disabled() {
        let h = histogram("test.registry.gated");
        let was = enabled();
        set_enabled(false);
        let before = h.count();
        let start = maybe_now();
        assert!(start.is_none());
        assert_eq!(record_since(h, start), None);
        assert_eq!(h.count(), before);

        set_enabled(true);
        let start = maybe_now();
        assert!(start.is_some());
        assert!(record_since(h, start).is_some());
        assert_eq!(h.count(), before + 1);
        set_enabled(was);
    }

    #[test]
    fn snapshot_serializes_to_canonical_json() {
        counter("test.registry.json").add(7);
        histogram("test.registry.json_hist").record_nanos(42);
        quantile_histogram("test.registry.json_quant").record_nanos(42);
        let j = snapshot().to_json();
        let text = j.to_string();
        assert!(text.contains("\"test.registry.json\":"), "{text}");
        assert!(text.contains("\"test.registry.json_hist\":"), "{text}");
        assert!(text.contains("\"test.registry.json_quant\":"), "{text}");
        assert!(text.contains("\"sum_nanos\":"), "{text}");
        assert!(text.contains("\"p99\":"), "{text}");
        // Round-trips through the arc-core parser.
        arc_core::json::parse(&text).expect("snapshot JSON must reparse");
    }

    #[test]
    fn quantile_histograms_snapshot_and_diff() {
        let q = quantile_histogram("test.registry.quant_diff");
        let before = snapshot();
        q.record_nanos(100);
        q.record_nanos(200);
        let d = snapshot()
            .diff(&before)
            .quantile("test.registry.quant_diff");
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_nanos, 300);
    }

    #[test]
    fn quantile_recording_gate_is_honored() {
        let q = quantile_histogram("test.registry.quant_gate");
        let was = crate::quantile::recording();
        crate::quantile::set_recording(false);
        let before = q.count();
        q.record_nanos(5);
        assert_eq!(q.count(), before);
        crate::quantile::set_recording(true);
        q.record_nanos(5);
        assert_eq!(q.count(), before + 1);
        crate::quantile::set_recording(was);
    }

    #[test]
    fn metrics_text_exposes_quantiles_against_a_known_distribution() {
        // Uniform 1..=1000 µs in nanoseconds: p50 ≈ 500µs, p95 ≈ 950µs,
        // p99 ≈ 990µs — each reported as its bucket floor, within one
        // half-octave bucket (≤ 25% below) of the exact rank value.
        let q = quantile_histogram("test.registry.exposition");
        for v in 1..=1000u64 {
            q.record_nanos(v * 1000);
        }
        let snap = q.snapshot();
        for (quant, exact) in [(0.5, 500_000u64), (0.95, 950_000), (0.99, 990_000)] {
            let got = snap.quantile(quant);
            assert!(got <= exact, "q={quant}: {got} > {exact}");
            assert!(
                got as f64 >= exact as f64 * 0.75,
                "q={quant}: {got} more than one bucket below {exact}"
            );
        }
        let text = metrics_text();
        assert!(
            text.contains("# TYPE arc_test_registry_exposition summary"),
            "{text}"
        );
        for quant in ["0.5", "0.95", "0.99"] {
            let needle = format!("arc_test_registry_exposition{{quantile=\"{quant}\"}} ");
            assert!(text.contains(&needle), "missing {needle} in:\n{text}");
        }
        assert!(
            text.contains("arc_test_registry_exposition_count 1000"),
            "{text}"
        );
        assert!(
            text.contains("arc_test_registry_exposition_overflow 0"),
            "{text}"
        );
    }

    #[test]
    fn metric_name_lint_accepts_the_catalog_shape_only() {
        // Shape rules, exercised directly (bad names never reach the
        // live registry — that would poison the registry-wide lint).
        assert!(name_well_formed("plan.cache.hit"));
        assert!(name_well_formed("engine.index.hash.builds"));
        assert!(name_well_formed("exec.morsel.latency"));
        assert!(!name_well_formed("flat")); // not namespaced
        assert!(!name_well_formed("has-hyphen.segment"));
        assert!(!name_well_formed("Upper.case"));
        assert!(!name_well_formed("trailing.dot."));
        assert!(!name_well_formed(".leading.dot"));
        assert!(!name_well_formed("digit.1leading"));
        assert!(!name_well_formed("has space.x"));
    }

    #[test]
    fn registered_metric_names_pass_the_lint() {
        counter("test.registry.lint_ok");
        validate_metric_names().expect("every registered name is clean");
    }
}
