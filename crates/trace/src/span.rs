//! Hierarchical execution spans: *when* each operator ran and for how
//! long, recorded into bounded per-worker-lane ring buffers.
//!
//! PR 8's [`profile`](crate::profile) layer answers "how many rows, how
//! many calls"; this layer answers "where did the wall clock go, on which
//! lane". A span is one timed region — query → plan → scope →
//! semi-join build → step → morsel — keyed by the same stable
//! [`OpId`]s the profile and `EXPLAIN ANALYZE` use, so a timeline event
//! is joinable back to its `act=N (est=N, q=X.X)` line.
//!
//! ## Design constraints
//!
//! * **No allocation and no locking on the record path.** Each lane owns
//!   a fixed slab of `AtomicU64` words sized at sink construction
//!   ([`LANE_CAPACITY`] slots × [`SLOT_WORDS`] words). Recording claims a
//!   slot with one `fetch_add` and publishes it with one `Release` store
//!   of the slot's meta word; readers ([`SpanSink::finish`]) take
//!   `Acquire` loads and skip unpublished slots. Worker lanes never
//!   contend: lane *i* appends only to buffer *i* (the claim counter is
//!   shared-safe anyway, so a mis-stamped lane degrades to contention,
//!   not corruption).
//! * **Bounded with an explicit drop count.** A full lane rejects the
//!   span *at start* — [`SpanSink::start`] returns `None` and bumps the
//!   lane's drop counter, so an overflowing query skips even the clock
//!   reads for the spans it cannot keep. The total is surfaced in
//!   [`SpanTrace::dropped`] and in the Chrome-trace export's metadata.
//! * **Zero cost when disabled.** The engine threads
//!   `Option<SpanSink>` through its context; `ARC_SPANS=off` (the
//!   default) leaves it `None` and every seam is one `Option` branch.
//!
//! Timestamps are nanoseconds relative to the sink's construction instant
//! (`Instant` monotonic clock), which is what the Chrome Trace Event
//! Format wants (`ts` is per-trace relative anyway).

use crate::profile::OpId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Spans a lane can hold before it starts dropping (per lane, so a
/// 4-thread sink holds 4× this many).
pub const LANE_CAPACITY: usize = 4096;

/// `AtomicU64` words per recorded span slot.
const SLOT_WORDS: usize = 5;

/// Meta-word bit marking a slot as fully written (set last, `Release`).
const READY_BIT: u64 = 1 << 63;
/// Meta-word bit marking `step` as `Some` in the span's [`OpId`].
const HAS_STEP_BIT: u64 = 1 << 62;

/// What kind of timed region a span covers. The hierarchy nests in this
/// order: a query contains plans and scopes, a scope contains semi-join
/// builds and steps, a partitioned scope contains morsels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// One whole engine evaluation (`eval_collection` / `eval_sentence` /
    /// a program).
    Query = 0,
    /// Planning a scope on a global-plan-cache miss (spec building,
    /// lookup, join ordering, access-path choice).
    Plan = 1,
    /// One enumeration of a quantifier scope (once for a top-level scope,
    /// once per outer row for a correlated one).
    Scope = 2,
    /// Building a decorrelated semi/anti-join key set (once per cache
    /// miss, shared across workers afterwards).
    SemiBuild = 3,
    /// One invocation of a join step (all candidate rows of one upstream
    /// environment, including everything nested below it).
    Step = 4,
    /// One morsel executed by a worker lane on the partitioned path.
    Morsel = 5,
}

impl SpanKind {
    fn from_u8(v: u8) -> SpanKind {
        match v {
            0 => SpanKind::Query,
            1 => SpanKind::Plan,
            2 => SpanKind::Scope,
            3 => SpanKind::SemiBuild,
            4 => SpanKind::Step,
            _ => SpanKind::Morsel,
        }
    }

    /// Default display name when no plan-derived name is available.
    pub fn default_name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Plan => "plan",
            SpanKind::Scope => "scope",
            SpanKind::SemiBuild => "semi-join build",
            SpanKind::Step => "step",
            SpanKind::Morsel => "morsel",
        }
    }
}

/// One lane's ring buffer: a claim counter, a drop counter, and the slot
/// slab. `claimed` only grows; slots `[0, claimed.min(LANE_CAPACITY))`
/// may hold published spans (check the ready bit).
struct LaneBuf {
    claimed: AtomicUsize,
    dropped: AtomicU64,
    /// Any span recorded or [`SpanSink::touch`]ed on this lane marks it
    /// used, so the export can name exactly the lanes that participated
    /// (a worker that claimed zero morsels still shows up).
    used: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl LaneBuf {
    fn new() -> LaneBuf {
        let mut slots = Vec::with_capacity(LANE_CAPACITY * SLOT_WORDS);
        slots.resize_with(LANE_CAPACITY * SLOT_WORDS, || AtomicU64::new(0));
        LaneBuf {
            claimed: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            used: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }
}

struct SinkInner {
    epoch: Instant,
    lanes: Vec<LaneBuf>,
}

/// Shared, cloneable handle to a set of per-lane span buffers for one
/// query evaluation. Cloning shares the buffers (`Arc`), which is how
/// `arc-exec` worker seeds feed the coordinator's sink.
#[derive(Clone)]
pub struct SpanSink(Arc<SinkInner>);

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("lanes", &self.0.lanes.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanSink {
    /// A sink with buffers for `lanes` worker lanes (lane 0 is the
    /// coordinator; pass the engine's resolved thread count). Clamped to
    /// at least one lane.
    pub fn with_lanes(lanes: usize) -> SpanSink {
        let lanes = lanes.max(1);
        SpanSink(Arc::new(SinkInner {
            epoch: Instant::now(),
            lanes: (0..lanes).map(|_| LaneBuf::new()).collect(),
        }))
    }

    /// Number of lanes this sink was built with.
    pub fn lane_count(&self) -> usize {
        self.0.lanes.len()
    }

    /// Nanoseconds since the sink's epoch — the span clock.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Begin a span on `lane`: returns the start timestamp, or `None`
    /// when the lane's buffer is already full (the drop counter is bumped
    /// and the caller should skip the matching [`SpanSink::complete`] —
    /// no clock is read on the drop path). A `lane` beyond the sink's
    /// buffers also drops (counted on lane 0).
    #[inline]
    pub fn start(&self, lane: usize) -> Option<u64> {
        let buf = match self.0.lanes.get(lane) {
            Some(b) => b,
            None => {
                self.0.lanes[0].dropped.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if buf.claimed.load(Ordering::Relaxed) >= LANE_CAPACITY {
            buf.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(self.now())
    }

    /// End a span begun with [`SpanSink::start`], publishing it into
    /// `lane`'s buffer. The slot claim can still lose a race against
    /// concurrent writers on the same lane (the engine stamps one lane
    /// per worker, so in practice it never does); a lost claim counts as
    /// a drop.
    pub fn complete(&self, lane: usize, kind: SpanKind, op: OpId, start_nanos: u64) {
        let end = self.now();
        let Some(buf) = self.0.lanes.get(lane) else {
            return;
        };
        buf.used.store(1, Ordering::Relaxed);
        let slot = buf.claimed.fetch_add(1, Ordering::Relaxed);
        if slot >= LANE_CAPACITY {
            buf.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let base = slot * SLOT_WORDS;
        let mut meta = READY_BIT | ((kind as u64) << 32) | (lane as u64 & 0xffff_ffff);
        let step = match op.step {
            Some(s) => {
                meta |= HAS_STEP_BIT;
                s as u64
            }
            None => 0,
        };
        buf.slots[base + 1].store(op.scope as u64, Ordering::Relaxed);
        buf.slots[base + 2].store(step, Ordering::Relaxed);
        buf.slots[base + 3].store(start_nanos, Ordering::Relaxed);
        buf.slots[base + 4].store(end.saturating_sub(start_nanos), Ordering::Relaxed);
        // Publish last: the ready bit makes the slot visible to readers.
        buf.slots[base].store(meta, Ordering::Release);
    }

    /// Mark `lane` as having participated even if it records no spans —
    /// worker lanes call this at init so the exported timeline names
    /// exactly `min(threads, morsels)` worker tids deterministically.
    pub fn touch(&self, lane: usize) {
        if let Some(buf) = self.0.lanes.get(lane) {
            buf.used.store(1, Ordering::Relaxed);
        }
    }

    /// Rewind every lane so the buffers can be reused for another
    /// evaluation without reallocating the slabs: claim, drop, and used
    /// counters go back to zero, and subsequent writes overwrite old
    /// slots (each slot republishes via its meta word, so a reader never
    /// sees stale data below the new claim point). This is how the bare
    /// `ARC_SPANS=on` knob amortizes its sink across evaluations —
    /// O(lanes) atomic stores per reset, no zeroing of the slot slabs.
    /// Resetting while another evaluation is still recording into the
    /// sink scrambles that evaluation's spans (never memory-unsafe —
    /// everything is atomics); callers that export must use a dedicated
    /// sink per evaluation, as `span_trace_*` do.
    pub fn reset(&self) {
        for buf in &self.0.lanes {
            buf.claimed.store(0, Ordering::Relaxed);
            buf.dropped.store(0, Ordering::Relaxed);
            buf.used.store(0, Ordering::Relaxed);
        }
    }

    /// Total spans dropped across all lanes (buffer overflow).
    pub fn dropped(&self) -> u64 {
        self.0
            .lanes
            .iter()
            .map(|b| b.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drain the buffers into an owned [`SpanTrace`]. Spans are returned
    /// lane-major in publish order; unpublished (still-racing) slots are
    /// skipped.
    pub fn finish(&self) -> SpanTrace {
        let mut spans = Vec::new();
        let mut lanes = Vec::new();
        for (lane, buf) in self.0.lanes.iter().enumerate() {
            if buf.used.load(Ordering::Relaxed) != 0 {
                lanes.push(lane);
            }
            let filled = buf.claimed.load(Ordering::Relaxed).min(LANE_CAPACITY);
            for slot in 0..filled {
                let base = slot * SLOT_WORDS;
                let meta = buf.slots[base].load(Ordering::Acquire);
                if meta & READY_BIT == 0 {
                    continue;
                }
                let kind = SpanKind::from_u8(((meta >> 32) & 0xff) as u8);
                let scope = buf.slots[base + 1].load(Ordering::Relaxed) as usize;
                let op = if meta & HAS_STEP_BIT != 0 {
                    OpId::step(scope, buf.slots[base + 2].load(Ordering::Relaxed) as usize)
                } else {
                    OpId::scope(scope)
                };
                spans.push(Span {
                    kind,
                    op,
                    lane,
                    start_nanos: buf.slots[base + 3].load(Ordering::Relaxed),
                    dur_nanos: buf.slots[base + 4].load(Ordering::Relaxed),
                });
            }
        }
        SpanTrace {
            spans,
            lanes,
            dropped: self.dropped(),
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Region kind.
    pub kind: SpanKind,
    /// Operator identity (joinable to profiles and `EXPLAIN ANALYZE`).
    pub op: OpId,
    /// Worker lane that executed the region (0 = coordinator).
    pub lane: usize,
    /// Start, nanoseconds since the sink epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
}

impl Span {
    /// End timestamp, nanoseconds since the sink epoch.
    pub fn end_nanos(&self) -> u64 {
        self.start_nanos.saturating_add(self.dur_nanos)
    }
}

/// A drained set of spans from one evaluation, ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTrace {
    /// All published spans, lane-major.
    pub spans: Vec<Span>,
    /// Lanes that participated (recorded a span or were touched).
    pub lanes: Vec<usize>,
    /// Spans lost to lane-buffer overflow.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_finish_roundtrip() {
        let sink = SpanSink::with_lanes(2);
        let t0 = sink.start(0).expect("empty lane accepts");
        sink.complete(0, SpanKind::Query, OpId::scope(7), t0);
        let t1 = sink.start(1).expect("lane 1 accepts");
        sink.complete(1, SpanKind::Step, OpId::step(7, 2), t1);
        let trace = sink.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.lanes, vec![0, 1]);
        let q = trace
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Query)
            .unwrap();
        assert_eq!(q.op, OpId::scope(7));
        assert_eq!(q.lane, 0);
        let s = trace
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Step)
            .unwrap();
        assert_eq!(s.op, OpId::step(7, 2));
        assert!(s.end_nanos() >= s.start_nanos);
    }

    #[test]
    fn overflow_drops_are_counted_not_lost_silently() {
        let sink = SpanSink::with_lanes(1);
        for _ in 0..LANE_CAPACITY {
            let t = sink.start(0).expect("under capacity");
            sink.complete(0, SpanKind::Morsel, OpId::step(1, 0), t);
        }
        // The lane is now full: start refuses (no clock read, no slot).
        assert!(sink.start(0).is_none());
        assert!(sink.start(0).is_none());
        let trace = sink.finish();
        assert_eq!(trace.spans.len(), LANE_CAPACITY);
        assert_eq!(trace.dropped, 2);
    }

    #[test]
    fn out_of_range_lane_drops_on_lane_zero() {
        let sink = SpanSink::with_lanes(1);
        assert!(sink.start(9).is_none());
        assert_eq!(sink.dropped(), 1);
        // complete() with a bad lane is a no-op, not a panic.
        sink.complete(9, SpanKind::Scope, OpId::scope(1), 0);
        assert_eq!(sink.finish().spans.len(), 0);
    }

    #[test]
    fn touch_marks_a_lane_without_spans() {
        let sink = SpanSink::with_lanes(4);
        sink.touch(2);
        let t0 = sink.start(0).unwrap();
        sink.complete(0, SpanKind::Query, OpId::scope(0), t0);
        let trace = sink.finish();
        assert_eq!(trace.lanes, vec![0, 2]);
    }

    #[test]
    fn reset_rewinds_full_lanes_for_reuse() {
        let sink = SpanSink::with_lanes(2);
        for _ in 0..LANE_CAPACITY {
            let t = sink.start(0).expect("under capacity");
            sink.complete(0, SpanKind::Morsel, OpId::step(1, 0), t);
        }
        assert!(sink.start(0).is_none(), "full lane drops");
        sink.reset();
        // Post-reset the lane accepts again and old state is gone.
        assert_eq!(sink.dropped(), 0);
        let t = sink.start(0).expect("reset lane accepts");
        sink.complete(0, SpanKind::Query, OpId::scope(3), t);
        let trace = sink.finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].op, OpId::scope(3));
        assert_eq!(trace.lanes, vec![0], "touch state also rewinds");
    }

    #[test]
    fn timestamps_are_monotonic_per_lane() {
        let sink = SpanSink::with_lanes(1);
        let a = sink.start(0).unwrap();
        sink.complete(0, SpanKind::Scope, OpId::scope(1), a);
        let b = sink.start(0).unwrap();
        assert!(b >= a);
        sink.complete(0, SpanKind::Scope, OpId::scope(2), b);
        let t = sink.finish();
        assert!(t.spans[0].start_nanos <= t.spans[1].start_nanos);
    }
}
