//! Chrome Trace Event Format export for [`SpanTrace`]s — the JSON that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` render as
//! a per-query timeline.
//!
//! Mapping: `pid` = the query (one process per trace), `tid` = worker
//! lane, duration events per span — `B`/`E` begin/end pairs for the
//! nesting kinds (query/plan/scope/semi-join build/step) and compact `X`
//! complete events for morsels. `M` metadata events name the process
//! (the query text) and each participating lane, so a 4-thread run shows
//! four named tracks. Timestamps are microseconds (the format's unit)
//! as floats, preserving nanosecond resolution.
//!
//! Every event carries `args.op`, the `"scope/step"` operator key that
//! [`QueryProfile::to_json`](crate::QueryProfile::to_json) and the
//! `EXPLAIN ANALYZE` renderer use, so a timeline block is joinable back
//! to its `act=N (est=N, q=X.X)` line. Span *names* come from a caller
//! closure (the engine passes `arc_plan::span_names`, rendering the same
//! `access source as var` text EXPLAIN prints); kinds with no
//! plan-derived name fall back to [`SpanKind::default_name`].
//!
//! ## Guaranteed well-formedness
//!
//! The exporter sorts each lane's spans by `(start asc, end desc)` and
//! emits `B`/`E` through an explicit stack, so in the output array every
//! `B` on a tid is closed by a matching `E` before anything that starts
//! after it ends — invariant 15's nesting golden checks exactly this.

use crate::profile::OpId;
use crate::span::{Span, SpanKind, SpanTrace};
use arc_core::json::Json;

/// Render an operator key exactly the way profiles do (`"scope/step"`,
/// `"scope/-"` for scope level), with the semi-join pseudo-step printed
/// as `"scope/semi"` for readability.
pub fn op_key(op: OpId) -> String {
    match op.step {
        None => format!("{}/-", op.scope),
        Some(s) if s == usize::MAX => format!("{}/semi", op.scope),
        Some(s) => format!("{}/{}", op.scope, s),
    }
}

fn micros(nanos: u64) -> Json {
    Json::Float(nanos as f64 / 1000.0)
}

fn name_for(kind: SpanKind, op: OpId, names: &dyn Fn(SpanKind, OpId) -> Option<String>) -> String {
    names(kind, op).unwrap_or_else(|| kind.default_name().to_string())
}

fn event(ph: &str, tid: usize, name: &str, span: &Span) -> Json {
    let mut pairs = vec![
        ("ph", Json::Str(ph.to_string())),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(tid as i64)),
        ("name", Json::Str(name.to_string())),
        (
            "ts",
            micros(if ph == "E" {
                span.end_nanos()
            } else {
                span.start_nanos
            }),
        ),
    ];
    if ph == "X" {
        pairs.push(("dur", micros(span.dur_nanos)));
    }
    pairs.push((
        "args",
        Json::obj([
            ("op", Json::Str(op_key(span.op))),
            ("kind", Json::Str(span.kind.default_name().to_string())),
        ]),
    ));
    Json::obj(pairs)
}

fn metadata(name: &str, tid: Option<usize>, value: &str) -> Json {
    let mut pairs = vec![
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::Int(1)),
        ("name", Json::Str(name.to_string())),
        ("args", Json::obj([("name", Json::Str(value.to_string()))])),
    ];
    if let Some(tid) = tid {
        pairs.insert(3, ("tid", Json::Int(tid as i64)));
    }
    Json::obj(pairs)
}

/// Serialize a [`SpanTrace`] as a Chrome Trace Event Format object:
/// `{"traceEvents": [...], "meta": {...}}`. `query` names the process
/// track; `names` maps `(kind, op)` to a display name (return `None` to
/// use the kind default).
pub fn chrome_trace(
    trace: &SpanTrace,
    query: &str,
    names: &dyn Fn(SpanKind, OpId) -> Option<String>,
) -> Json {
    let mut events = Vec::new();
    events.push(metadata("process_name", None, query));
    for &lane in &trace.lanes {
        let label = if lane == 0 {
            "lane 0 (coordinator)".to_string()
        } else {
            format!("lane {lane}")
        };
        events.push(metadata("thread_name", Some(lane), &label));
    }

    // Per lane: nesting kinds as stack-emitted B/E, morsels as X.
    let mut lanes: Vec<usize> = trace.spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        let mut nested: Vec<&Span> = trace
            .spans
            .iter()
            .filter(|s| s.lane == lane && s.kind != SpanKind::Morsel)
            .collect();
        // Parent before child on ties: earlier start first, then the
        // longer (enclosing) span first, then the more enclosing *kind*
        // (query < plan < scope < build < step < morsel) when a coarse
        // clock hands parent and child identical endpoints.
        nested.sort_by(|a, b| {
            a.start_nanos
                .cmp(&b.start_nanos)
                .then(b.end_nanos().cmp(&a.end_nanos()))
                .then(a.kind.cmp(&b.kind))
        });
        let mut stack: Vec<&Span> = Vec::new();
        for span in nested {
            while let Some(top) = stack.last() {
                if top.end_nanos() <= span.start_nanos {
                    let name = name_for(top.kind, top.op, names);
                    events.push(event("E", lane, &name, top));
                    stack.pop();
                } else {
                    break;
                }
            }
            let name = name_for(span.kind, span.op, names);
            events.push(event("B", lane, &name, span));
            stack.push(span);
        }
        while let Some(top) = stack.pop() {
            let name = name_for(top.kind, top.op, names);
            events.push(event("E", lane, &name, top));
        }
        for span in trace
            .spans
            .iter()
            .filter(|s| s.lane == lane && s.kind == SpanKind::Morsel)
        {
            let name = name_for(span.kind, span.op, names);
            events.push(event("X", lane, &name, span));
        }
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_string())),
        (
            "meta",
            Json::obj([
                ("dropped_spans", Json::Int(trace.dropped as i64)),
                (
                    "lanes",
                    Json::Arr(trace.lanes.iter().map(|&l| Json::Int(l as i64)).collect()),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanSink, SpanTrace};

    fn no_names(_: SpanKind, _: OpId) -> Option<String> {
        None
    }

    fn span(kind: SpanKind, op: OpId, lane: usize, start: u64, dur: u64) -> Span {
        Span {
            kind,
            op,
            lane,
            start_nanos: start,
            dur_nanos: dur,
        }
    }

    /// Walk traceEvents simulating a per-tid stack; every B must close
    /// with a matching E and nothing may close out of order.
    fn assert_balanced(j: &Json) {
        let Json::Obj(top) = j else {
            panic!("not an object")
        };
        let Json::Arr(events) = &top["traceEvents"] else {
            panic!("no traceEvents")
        };
        let mut stacks: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
        for e in events {
            let Json::Obj(e) = e else {
                panic!("event not an object")
            };
            let ph = match &e["ph"] {
                Json::Str(s) => s.as_str(),
                _ => panic!("ph"),
            };
            let tid = match e.get("tid") {
                Some(Json::Int(t)) => *t,
                _ => -1,
            };
            let name = match &e["name"] {
                Json::Str(s) => s.clone(),
                _ => panic!("name"),
            };
            match ph {
                "B" => stacks.entry(tid).or_default().push(name),
                "E" => {
                    let popped = stacks.entry(tid).or_default().pop();
                    assert_eq!(popped.as_deref(), Some(name.as_str()), "mismatched E");
                }
                "X" | "M" => {}
                other => panic!("unexpected ph {other}"),
            }
        }
        for (tid, stack) in stacks {
            assert!(
                stack.is_empty(),
                "unclosed B events on tid {tid}: {stack:?}"
            );
        }
    }

    #[test]
    fn nested_spans_emit_balanced_b_e_pairs() {
        let trace = SpanTrace {
            spans: vec![
                span(SpanKind::Query, OpId::scope(0), 0, 0, 1000),
                span(SpanKind::Scope, OpId::scope(7), 0, 100, 800),
                span(SpanKind::Step, OpId::step(7, 0), 0, 150, 300),
                span(SpanKind::Step, OpId::step(7, 1), 0, 500, 300),
                span(SpanKind::Morsel, OpId::step(7, 0), 1, 200, 50),
            ],
            lanes: vec![0, 1],
            dropped: 0,
        };
        let j = chrome_trace(&trace, "test query", &no_names);
        assert_balanced(&j);
        let text = j.to_string();
        assert!(text.contains("\"displayTimeUnit\""), "{text}");
        assert!(text.contains("\"7/0\""), "{text}");
        assert!(text.contains("\"thread_name\""), "{text}");
        arc_core::json::parse(&text).expect("chrome trace must reparse");
    }

    #[test]
    fn tie_breaking_keeps_parent_outside_child() {
        // Child shares both endpoints with its parent (coarse clock):
        // parent must still open first and close last.
        let trace = SpanTrace {
            spans: vec![
                span(SpanKind::Step, OpId::step(1, 1), 0, 10, 20),
                span(SpanKind::Scope, OpId::scope(1), 0, 10, 20),
            ],
            lanes: vec![0],
            dropped: 0,
        };
        let j = chrome_trace(&trace, "q", &no_names);
        assert_balanced(&j);
        let Json::Obj(top) = &j else { unreachable!() };
        let Json::Arr(events) = &top["traceEvents"] else {
            unreachable!()
        };
        let phases: Vec<(String, String)> = events
            .iter()
            .filter_map(|e| {
                let Json::Obj(e) = e else { return None };
                match (&e["ph"], &e["name"]) {
                    (Json::Str(ph), Json::Str(n)) if ph != "M" => Some((ph.clone(), n.clone())),
                    _ => None,
                }
            })
            .collect();
        assert_eq!(
            phases,
            vec![
                ("B".into(), "scope".into()),
                ("B".into(), "step".into()),
                ("E".into(), "step".into()),
                ("E".into(), "scope".into()),
            ]
        );
    }

    #[test]
    fn names_closure_overrides_defaults() {
        let sink = SpanSink::with_lanes(1);
        let t = sink.start(0).unwrap();
        sink.complete(0, SpanKind::Step, OpId::step(3, 0), t);
        let j = chrome_trace(&sink.finish(), "q", &|kind, op| {
            (kind == SpanKind::Step && op == OpId::step(3, 0)).then(|| "scan R as r".to_string())
        });
        let text = j.to_string();
        assert!(text.contains("\"scan R as r\""), "{text}");
    }

    #[test]
    fn op_keys_match_profile_rendering() {
        assert_eq!(op_key(OpId::scope(42)), "42/-");
        assert_eq!(op_key(OpId::step(42, 3)), "42/3");
        assert_eq!(op_key(OpId::semi(42)), "42/semi");
    }

    #[test]
    fn dropped_count_is_surfaced() {
        let trace = SpanTrace {
            spans: vec![],
            lanes: vec![],
            dropped: 17,
        };
        let text = chrome_trace(&trace, "q", &no_names).to_string();
        assert!(text.contains("\"dropped_spans\":17"), "{text}");
    }
}
