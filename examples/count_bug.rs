//! The count bug (paper §3.2, Fig 21) end to end.
//!
//! Three SQL formulations of "ids in R whose q equals the number of
//! matching S rows" are lowered to ARC, evaluated on the paper's instance
//! (R = {(9, 0)}, S = ∅), and compared. Version 2 — Kim's 1982
//! decorrelation — silently loses the answer; ARC's vocabulary pinpoints
//! why: version 1 uses the aggregate as a *test* inside a correlated `γ∅`
//! scope, version 2 turns it into a *value* computed over groups that do
//! not exist for empty inputs. The `arc-analysis` decorrelation rewrite
//! reproduces both the bug and the fix mechanically.
//!
//! ```text
//! cargo run --example count_bug
//! ```

use arc_analysis::{decorrelate, Decorrelation};
use arc_core::pattern::signature;
use arc_core::Conventions;
use arc_engine::{Catalog, Engine, Relation};
use arc_sql::sql_to_arc;

fn main() {
    let catalog = Catalog::new()
        .with(Relation::from_ints("R", &["id", "q"], &[&[9, 0]]))
        .with(Relation::from_ints("S", &["id", "d"], &[]));
    let schemas = catalog.schema_map();
    let engine = Engine::new(&catalog, Conventions::sql());

    let v1_sql = "select R.id from R where R.q = (select count(S.d) from S where S.id = R.id)";
    let v2_sql = "select R.id from R, (select S.id, count(S.d) as ct from S group by S.id) as X \
                  where R.q = X.ct and R.id = X.id";
    let v3_sql = "select R.id from R, (select R2.id, count(S.d) as ct from R R2 left join S \
                  on R2.id = S.id group by R2.id) as X where R.q = X.ct and R.id = X.id";

    println!("instance: R = {{(9, 0)}}, S = ∅\n");
    for (name, sql) in [
        ("version 1", v1_sql),
        ("version 2", v2_sql),
        ("version 3", v3_sql),
    ] {
        let arc = sql_to_arc(sql, &schemas).expect("lowers");
        let result = engine.eval_collection(&arc).expect("evaluates");
        println!("{name}:\n  {sql}");
        println!("  ALT pattern: {}", signature(&arc).canon);
        println!("  result: {:?}\n", result.sorted_rows());
    }

    // The analysis crate reproduces both rewrites from version 1 directly
    // in the calculus.
    let v1 = sql_to_arc(v1_sql, &schemas).unwrap();
    let naive = decorrelate(&v1, Decorrelation::NaiveIncorrect).expect("shape matches");
    let fixed = decorrelate(&v1, Decorrelation::LeftJoinCorrect).expect("shape matches");
    let r_naive = engine.eval_collection(&naive).unwrap();
    let r_fixed = engine.eval_collection(&fixed).unwrap();
    println!(
        "decorrelate(v1, NaiveIncorrect)  → {:?}  (the bug, = version 2)",
        r_naive.sorted_rows()
    );
    println!(
        "decorrelate(v1, LeftJoinCorrect) → {:?}  (the fix, = version 3)",
        r_fixed.sorted_rows()
    );

    // The paper's diagnostic vocabulary: version 1's aggregate is a *test*.
    let cls = arc_analysis::classify(&v1);
    for a in &cls.aggregates {
        println!(
            "\nversion 1 aggregate `{}` used as {:?} in pattern {:?}",
            a.predicate, a.role, a.pattern
        );
    }
}
