//! Matrix multiplication in ARC (paper §3.1, Fig 20, Eq (26)).
//!
//! Rel's `def MatrixMult[i,j]: sum[[k]: A[i,k]*B[k,j]]` becomes, in the
//! named perspective, a single grouped scope joining sparse matrices
//! `A(row,col,val)`, `B(row,col,val)` with the reified multiplication
//! external `*($1, $2, out)` and summing per `(a.row, b.col)` group.
//!
//! ```text
//! cargo run --example matrix_multiplication
//! ```

use arc_analysis::sparse_matrix;
use arc_core::Conventions;
use arc_engine::{Catalog, Engine};
use arc_parser::{parse_collection, print_collection};

fn main() {
    // Eq (26), verbatim in the comprehension syntax.
    let matmul = parse_collection(
        "{C(row,col,val) | ∃a ∈ A, b ∈ B, f ∈ \"*\", γ a.row, b.col \
         [C.row = a.row ∧ C.col = b.col ∧ a.col = b.row ∧ \
          C.val = sum(f.out) ∧ f.$1 = a.val ∧ f.$2 = b.val]}",
    )
    .expect("parses");
    println!("ARC (Eq 26):\n  {}\n", print_collection(&matmul));

    // Small dense example: A = [[1,2],[3,4]], B = [[5,6],[7,8]].
    let catalog = Catalog::with_standard_externals()
        .with(arc_engine::Relation::from_ints(
            "A",
            &["row", "col", "val"],
            &[&[0, 0, 1], &[0, 1, 2], &[1, 0, 3], &[1, 1, 4]],
        ))
        .with(arc_engine::Relation::from_ints(
            "B",
            &["row", "col", "val"],
            &[&[0, 0, 5], &[0, 1, 6], &[1, 0, 7], &[1, 1, 8]],
        ));
    let c = Engine::new(&catalog, Conventions::set())
        .eval_collection(&matmul)
        .expect("evaluates");
    println!("A·B =\n{c}");

    // Sparse scaling: the same query, unchanged, on generated matrices.
    for n in [8usize, 16, 24] {
        let catalog = Catalog::with_standard_externals()
            .with(sparse_matrix("A", n, 0.3, 1))
            .with(sparse_matrix("B", n, 0.3, 2));
        let start = std::time::Instant::now();
        let c = Engine::new(&catalog, Conventions::set())
            .eval_collection(&matmul)
            .expect("evaluates");
        println!(
            "{n:2}×{n:<2} sparse (30% fill): {:4} output cells in {:?}",
            c.len(),
            start.elapsed()
        );
    }
}
