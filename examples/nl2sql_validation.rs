//! ARC/ALT as an NL2SQL intermediate target (paper §1 question 3, §4, §5).
//!
//! Simulates the pipeline the paper proposes: a model generates a
//! *structurally constrained* ALT (here: JSON), the binder validates it
//! (well-scoped variables, grouping legality, correlation shape), it is
//! rendered to SQL, and candidate answers are scored by **intent** —
//! pattern and execution — rather than string match.
//!
//! ```text
//! cargo run --example nl2sql_validation
//! ```

use arc_analysis::{intent_report, InstanceSpec};
use arc_core::alt;
use arc_core::binder::Binder;
use arc_core::Conventions;
use arc_engine::{Catalog, Engine, Relation};
use arc_sql::{arc_to_sql, sql_to_arc};

fn main() {
    let catalog = Catalog::new().with(Relation::from_ints(
        "Emp",
        &["id", "dept", "sal"],
        &[&[1, 1, 50], &[2, 1, 60], &[3, 2, 40]],
    ));
    let schemas = catalog.schema_map();

    // 1. "Machine-generated" intent: an ALT arriving as JSON. (This is the
    //    serialized form of {Q(dept,total) | ∃e∈Emp, γ e.dept [...]}.)
    let gold = arc_parser::parse_collection(
        "{Q(dept,total) | ∃e ∈ Emp, γ e.dept [Q.dept = e.dept ∧ Q.total = sum(e.sal)]}",
    )
    .unwrap();
    let wire_json = alt::to_json(&gold);
    println!("ALT on the wire ({} bytes of JSON)\n", wire_json.len());

    // 2. Receive + validate.
    let received = alt::from_json(&wire_json).expect("well-formed ALT");
    let info = Binder::with_schemas(schemas.clone()).bind_collection(&received);
    assert!(info.is_valid(), "validation failed: {:?}", info.diagnostics);
    println!("validation: well-scoped ✓ grouping legal ✓\n");

    // 3. Render to SQL for execution.
    let sql = arc_to_sql(&received, &Conventions::sql()).unwrap();
    println!("rendered SQL:\n{sql}\n");
    let result = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&received)
        .unwrap();
    println!("result:\n{result}");

    // 4. A rejected generation: aggregate without a grouping scope.
    let bad = arc_parser::parse_collection(
        "{Q(dept,total) | ∃e ∈ Emp [Q.dept = e.dept ∧ Q.total = sum(e.sal)]}",
    )
    .unwrap();
    let bad_info = Binder::with_schemas(schemas.clone()).bind_collection(&bad);
    println!("a malformed generation is caught before execution:");
    for d in bad_info.diagnostics {
        println!("  ✗ {d}");
    }

    // 5. Intent-based scoring (Floratou et al.'s critique, §1): a candidate
    //    that differs in text but matches the gold intent.
    let candidate_sql = "select E2.dept, sum(E2.sal) total from Emp E2 group by E2.dept";
    let candidate = sql_to_arc(candidate_sql, &schemas).unwrap();
    let spec = InstanceSpec {
        relations: vec![arc_analysis::RelationSpec {
            name: "Emp".into(),
            attrs: vec!["id".into(), "dept".into(), "sal".into()],
            rows: 0..8,
            domain: 0..4,
            null_rate: 0.0,
        }],
    };
    let report = intent_report(
        &gold,
        "select Emp.dept, sum(Emp.sal) total from Emp group by Emp.dept",
        &candidate,
        candidate_sql,
        &spec,
        Conventions::sql(),
        40,
    );
    println!("\nintent scoring of a renamed candidate:");
    println!("  exact text match:   {}", report.exact_text_match);
    println!("  execution match:    {}", report.execution_match);
    println!("  pattern match:      {}", report.pattern_match);
    println!("  feature similarity: {:.3}", report.feature_similarity);
}
