//! Quickstart: one query, three modalities, one evaluation.
//!
//! Walks the paper's running example (Eq (1) / Fig 2): parse the
//! comprehension syntax, validate it with the binder, show the ALT and the
//! higraph outline, translate to SQL, and evaluate it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use arc_core::binder::Binder;
use arc_core::pattern::signature;
use arc_core::Conventions;
use arc_engine::{Catalog, Engine, Relation};
use arc_higraph::{build_collection, render_outline};
use arc_parser::{parse_collection, print_collection};
use arc_sql::arc_to_sql;

fn main() {
    // 1. The comprehension-syntax modality (paper Eq (1)).
    let source = "{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}";
    let query = parse_collection(source).expect("parses");
    println!("comprehension syntax:\n  {}\n", print_collection(&query));

    // 2. Validate: the linking step (name resolution, scopes, roles).
    let info = Binder::new().bind_collection(&query);
    assert!(info.is_valid(), "diagnostics: {:?}", info.diagnostics);
    println!(
        "binder: {} scope(s), {} predicate(s), valid ✓\n",
        info.scope_count,
        info.predicates.len()
    );

    // 3. The machine-facing ALT modality (Fig 2a).
    println!(
        "ALT modality:\n{}",
        arc_core::alt::render_collection(&query)
    );

    // 4. The diagrammatic higraph modality (Fig 2b), as a text outline.
    let hg = build_collection(&query);
    println!("higraph modality:\n{}", render_outline(&hg));

    // 5. The SQL modality.
    let sql = arc_to_sql(&query, &Conventions::set()).expect("renders");
    println!("SQL modality:\n{sql}\n");

    // 6. The relational pattern — the unit of cross-language comparison.
    println!("pattern signature:\n{}", signature(&query));

    // 7. Evaluate on an instance.
    let catalog = Catalog::new()
        .with(Relation::from_ints(
            "R",
            &["A", "B"],
            &[&[1, 10], &[2, 20], &[3, 30]],
        ))
        .with(Relation::from_ints(
            "S",
            &["B", "C"],
            &[&[10, 0], &[20, 1], &[30, 0]],
        ));
    let result = Engine::new(&catalog, Conventions::set())
        .eval_collection(&query)
        .expect("evaluates");
    println!("result:\n{result}");
}
