//! ARC as a Rosetta Stone (paper §2.5, Figs 4–8): the *same question* —
//! "sum of B per A over R(A,B)" — written in SQL, in Soufflé Datalog, and
//! directly in the comprehension syntax, all lowered into ARC and compared
//! at the pattern level.
//!
//! The punchline reproduces the paper's analysis: SQL's GROUP BY carries the
//! **FIO** pattern (one scope, one logical copy of R); Soufflé's aggregate
//! carries the **FOI** pattern (a correlated `γ∅` scope, *two* logical
//! copies of R). Same answers under set semantics, different relational
//! patterns — and ARC names the difference.
//!
//! ```text
//! cargo run --example rosetta_stone
//! ```

use arc_analysis::{classify, collection_feature_similarity, AggPattern};
use arc_core::pattern::signature;
use arc_core::Conventions;
use arc_datalog::{lower_program, parse_datalog};
use arc_engine::{Catalog, Engine, Relation};
use arc_parser::parse_collection;
use arc_sql::sql_to_arc;

fn main() {
    let catalog = Catalog::new().with(Relation::from_ints(
        "R",
        &["A", "B"],
        &[&[1, 10], &[1, 20], &[2, 5]],
    ));
    let schemas = catalog.schema_map();

    // --- SQL (Fig 4a): the FIO pattern -----------------------------------
    let sql = "select R.A, sum(R.B) sm from R group by R.A";
    let from_sql = sql_to_arc(sql, &schemas).expect("lowers");

    // --- Soufflé (Eq (6) shape): the FOI pattern --------------------------
    let datalog = ".decl R(A: number, B: number)\n\
                   .decl Q(A: number, sm: number)\n\
                   Q(a, sum b : {R(a, b)}) :- R(a, _).\n";
    let from_datalog_program =
        lower_program(&parse_datalog(datalog).expect("parses")).expect("lowers");
    let from_datalog = from_datalog_program.definitions[0].collection.clone();

    // --- Comprehension syntax (Eq (3)) ------------------------------------
    let from_arc = parse_collection("{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        .expect("parses");

    // All three compute the same relation (set semantics).
    let engine = Engine::new(&catalog, Conventions::set());
    let r_sql = engine.eval_collection(&from_sql).unwrap();
    let r_arc = engine.eval_collection(&from_arc).unwrap();
    let r_dl = engine.eval_program(&from_datalog_program).unwrap().defined["Q"].clone();
    assert!(r_sql.set_eq(&r_arc) && r_arc.set_eq(&r_dl));
    println!("all three front-ends compute:\n{r_sql}");

    // But the *patterns* differ — and ARC names the difference.
    for (name, c) in [
        ("SQL (GROUP BY)", &from_sql),
        ("comprehension (Eq 3)", &from_arc),
        ("Soufflé (aggregate)", &from_datalog),
    ] {
        let cls = classify(c);
        let sig = signature(c);
        let copies = sig.features.get("rel:R").copied().unwrap_or(0);
        let pattern = cls
            .aggregates
            .first()
            .map(|a| format!("{:?}", a.pattern))
            .unwrap_or_else(|| "—".into());
        println!("{name:24} aggregation pattern: {pattern:7}  logical copies of R: {copies}");
        assert!(matches!(
            cls.aggregates[0].pattern,
            AggPattern::Fio | AggPattern::Foi
        ));
    }

    println!(
        "\nSQL vs comprehension pattern similarity: {:.3} (identical patterns)",
        collection_feature_similarity(&from_sql, &from_arc)
    );
    println!(
        "SQL vs Soufflé pattern similarity:       {:.3} (FIO vs FOI)",
        collection_feature_similarity(&from_sql, &from_datalog)
    );

    // The FIO → FOI rewrite closes the gap mechanically (§2.5).
    let rewritten = arc_analysis::fio_to_foi(&from_arc).expect("rewrite applies");
    println!(
        "after fio_to_foi(comprehension):          {:.3} (both FOI now)",
        collection_feature_similarity(&rewritten, &from_datalog)
    );
}
