//! Workspace invariant 16 — **the guard is invisible**: for any program
//! and instance, an engine running under `arc-guard` governance with
//! limits it never hits (a generous deadline, a generous memory budget)
//! returns exactly the rows — same order, same multiplicities — of the
//! unguarded engine, across:
//!
//! * all three evaluation strategies (planned / nested-loop / hash-join),
//! * `ARC_THREADS` 1 and 4 (the guard is checked per morsel claim),
//! * the vector and index knobs (admission seams sit on both paths),
//! * fixpoint programs (the guard spans every stratum and round).
//!
//! A *tight* budget must degrade, not diverge: with every build
//! admission denied, the streaming/nested fallbacks still produce
//! row-identical output — only hard exhaustion (fixpoint growth)
//! aborts, with a structured error.
//!
//! Cancellation is **all-or-nothing**: a query tripped at any seam
//! either completes with the full answer or returns
//! `EvalError::Cancelled` — never a partial relation — and the same
//! engine answers the next query correctly.
//!
//! The fault-injection matrix drives an injected panic or budget denial
//! through every registered seam and asserts the structured outcome:
//! never a process panic, caches evicted-or-recovered, worker pool
//! alive for the next query on the same catalog.

use arc_analysis::{chain_catalog, random_catalog, random_conjunctive_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::ast::Collection;
use arc_core::conventions::Conventions;
use arc_engine::{seam, Catalog, Engine, EvalError, EvalStrategy, FaultKind, FaultPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Limits the workload never reaches: the guard runs every check and
/// charges every seam, but nothing trips.
const GENEROUS_DEADLINE: Duration = Duration::from_secs(3600);
const GENEROUS_BUDGET: usize = 1 << 30;

/// Evaluate `q` unguarded (the reference) and under never-hit limits,
/// across every strategy × thread count × vector/index knob point,
/// asserting row-identical output.
fn assert_guard_invisible(catalog: &Catalog, q: &Collection, conv: Conventions) {
    for strategy in [
        EvalStrategy::Planned,
        EvalStrategy::NestedLoop,
        EvalStrategy::HashJoin,
    ] {
        let reference = Engine::new(catalog, conv)
            .with_strategy(strategy)
            .with_threads(1)
            .eval_collection(q)
            .unwrap();
        for threads in [1usize, 4] {
            for (vectorize, indexes) in [(true, true), (true, false), (false, false)] {
                let base = || {
                    Engine::new(catalog, conv)
                        .with_strategy(strategy)
                        .with_threads(threads)
                        .with_vectorize(vectorize)
                        .with_indexes(indexes)
                };
                let off = base().eval_collection(q).unwrap();
                let on = base()
                    .with_timeout(GENEROUS_DEADLINE)
                    .with_mem_budget(GENEROUS_BUDGET)
                    .eval_collection(q)
                    .unwrap();
                assert_eq!(
                    off.rows, on.rows,
                    "guard drift: strategy {strategy:?} threads {threads} \
                     vectorize {vectorize} indexes {indexes} conv {conv:?}"
                );
                assert_eq!(
                    reference.rows, on.rows,
                    "knob drift: strategy {strategy:?} threads {threads} \
                     vectorize {vectorize} indexes {indexes} conv {conv:?}"
                );
                // A budget too small for ANY build: every admission is
                // denied, every optimized build degrades to its
                // streaming / nested / row-at-a-time fallback — and the
                // rows must not move.
                let degraded = base().with_mem_budget(1).eval_collection(q).unwrap();
                assert_eq!(
                    reference.rows, degraded.rows,
                    "degradation drift: strategy {strategy:?} threads {threads} \
                     vectorize {vectorize} indexes {indexes} conv {conv:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 16 over generated conjunctive queries (joins plus
    /// constant selections), with and without NULLs, both conventions,
    /// on `ANALYZE`d catalogs.
    #[test]
    fn guarded_identical_on_conjunctive_queries(
        seed in 0u64..300,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in any::<bool>(),
    ) {
        let spec = if with_nulls {
            InstanceSpec::rs_with_nulls(0.25)
        } else {
            InstanceSpec::rs()
        };
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(9973));
        let mut catalog = random_catalog(&spec, &mut rng);
        catalog.analyze();
        for conv in [Conventions::sql(), Conventions::set()] {
            assert_guard_invisible(&catalog, &q, conv);
        }
    }

    /// Cancellation is all-or-nothing: trip `Cancel` at a random visit
    /// of a random seam — the result is either the complete answer (the
    /// fault never fired: that visit count was never reached) or
    /// `EvalError::Cancelled`; never a partial relation. Either way the
    /// same catalog answers the next, unguarded query identically —
    /// caches and the worker pool survive the aborted run.
    #[test]
    fn cancellation_is_all_or_nothing(
        seam_ix in 0usize..8,
        at in 1u64..48,
        seed in 0u64..200,
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        let spec = InstanceSpec::rs();
        let q = random_conjunctive_query(&spec, 2, 1, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let mut catalog = random_catalog(&spec, &mut rng);
        catalog.analyze();
        let reference = Engine::new(&catalog, Conventions::sql())
            .with_threads(1)
            .eval_collection(&q)
            .unwrap();
        let tripped = Engine::new(&catalog, Conventions::sql())
            .with_threads(threads)
            .with_fault(FaultPlan {
                seam: seam::ALL[seam_ix],
                at,
                kind: FaultKind::Cancel,
            })
            .eval_collection(&q);
        match tripped {
            Ok(rows) => prop_assert_eq!(&rows.rows, &reference.rows, "partial result"),
            Err(EvalError::Cancelled) => {}
            Err(other) => prop_assert!(false, "expected Cancelled, got {other:?}"),
        }
        let rerun = Engine::new(&catalog, Conventions::sql())
            .with_threads(threads)
            .eval_collection(&q)
            .unwrap();
        prop_assert_eq!(&rerun.rows, &reference.rows, "post-cancel rerun drifted");
    }
}

/// Fixpoint programs under the guard: generous limits are invisible for
/// both fixpoint strategies, and the recursive growth charge is the one
/// hard (non-degrading) budget consumer — a tiny budget aborts with
/// `MemoryBudget`, structured.
#[test]
fn fixpoint_guarded_identical_and_tight_budget_aborts_structured() {
    let catalog = chain_catalog(24, 0, 3);
    let p = fx::eq16();
    for strategy in [
        arc_engine::FixpointStrategy::Naive,
        arc_engine::FixpointStrategy::SemiNaive,
    ] {
        let reference = Engine::new(&catalog, Conventions::set())
            .eval_program_with(&p, strategy)
            .unwrap();
        let guarded = Engine::new(&catalog, Conventions::set())
            .with_timeout(GENEROUS_DEADLINE)
            .with_mem_budget(GENEROUS_BUDGET)
            .eval_program_with(&p, strategy)
            .unwrap();
        assert_eq!(
            reference.defined["A"].rows, guarded.defined["A"].rows,
            "guarded fixpoint drifted under {strategy:?}"
        );
        let starved = Engine::new(&catalog, Conventions::set())
            .with_mem_budget(1)
            .eval_program_with(&p, strategy);
        assert!(
            matches!(starved, Err(EvalError::MemoryBudget)),
            "starved fixpoint must abort structured, got {starved:?}"
        );
    }
    // The same catalog still answers after the aborted fixpoint.
    let after = Engine::new(&catalog, Conventions::set())
        .eval_program(&p)
        .unwrap();
    assert!(!after.defined["A"].rows.is_empty());
}

/// A pre-cancelled handle trips before any work; `reset` re-arms the
/// same engine, which then answers correctly — the documented
/// cancel-from-another-thread lifecycle, compressed.
#[test]
fn cancel_handle_trips_and_resets_the_same_engine() {
    let catalog = fx::rs_catalog(256);
    let engine = Engine::new(&catalog, Conventions::sql()).with_threads(1);
    let handle = engine.cancel_handle();
    handle.cancel();
    assert!(handle.is_cancelled());
    let cancelled = engine.eval_collection(&fx::eq1());
    assert!(
        matches!(cancelled, Err(EvalError::Cancelled)),
        "pre-cancelled engine must return Cancelled, got {cancelled:?}"
    );
    handle.reset();
    let rows = engine.eval_collection(&fx::eq1()).unwrap();
    let reference = Engine::new(&catalog, Conventions::sql())
        .with_threads(1)
        .eval_collection(&fx::eq1())
        .unwrap();
    assert_eq!(rows.rows, reference.rows, "post-reset rerun drifted");
}

/// A zero deadline trips within one morsel of work on a scan big enough
/// to cross the cooperative check cadence.
#[test]
fn zero_deadline_surfaces_as_deadline_exceeded() {
    let catalog = fx::rs_catalog(4096);
    for threads in [1usize, 4] {
        let out = Engine::new(&catalog, Conventions::sql())
            .with_threads(threads)
            .with_timeout(Duration::ZERO)
            .eval_collection(&fx::eq1());
        assert!(
            matches!(out, Err(EvalError::DeadlineExceeded)),
            "threads {threads}: expected DeadlineExceeded, got {out:?}"
        );
    }
}

/// One canonical workload per registered seam: a (catalog, query) pair
/// known to visit the seam on its very first opportunity, so
/// `FaultPlan { at: 1 }` deterministically fires.
struct SeamCase {
    seam: &'static str,
    /// Build the catalog; queries are built per-run.
    catalog: fn() -> Catalog,
    query: fn() -> Collection,
    threads: usize,
    /// What an injected budget denial does at this seam: admission
    /// seams degrade (complete, row-identical); check seams trip
    /// (`EvalError::MemoryBudget`).
    budget_degrades: bool,
}

fn skew_analyzed() -> Catalog {
    let mut c = fx::stats_skew_catalog(4096);
    c.analyze();
    c
}

fn semijoin_analyzed() -> Catalog {
    let mut c = fx::semijoin_catalog(64, 64);
    c.analyze();
    c
}

fn seam_cases() -> Vec<SeamCase> {
    vec![
        SeamCase {
            seam: seam::ENUMERATE,
            catalog: || fx::rs_catalog(256),
            query: fx::eq1,
            threads: 1,
            budget_degrades: false,
        },
        SeamCase {
            // The partition axis needs an un-probed scan at step 0:
            // eq3's grouped single-relation scan scatters into morsels.
            seam: seam::MORSEL,
            catalog: || fx::grouped_catalog(1024, 17),
            query: fx::eq3,
            threads: 4,
            budget_degrades: false,
        },
        SeamCase {
            seam: seam::HASH_BUILD,
            catalog: || fx::rs_catalog(256),
            query: fx::eq1,
            threads: 1,
            budget_degrades: true,
        },
        SeamCase {
            seam: seam::SEMI_BUILD,
            catalog: semijoin_analyzed,
            query: || fx::exists_corr(64),
            threads: 1,
            budget_degrades: true,
        },
        SeamCase {
            seam: seam::CHUNK_BUILD,
            catalog: || fx::rs_catalog(4096),
            query: fx::eq1,
            threads: 1,
            budget_degrades: true,
        },
        SeamCase {
            seam: seam::ORDERED_BUILD,
            catalog: skew_analyzed,
            query: || fx::eq1_range(4096),
            threads: 1,
            budget_degrades: true,
        },
        SeamCase {
            seam: seam::SELECTION_BUILD,
            catalog: skew_analyzed,
            query: || fx::eq1_range(4096),
            threads: 1,
            budget_degrades: true,
        },
    ]
}

/// The fault-injection matrix (tentpole acceptance): for every
/// registered seam, an injected **panic** surfaces as
/// `EvalError::WorkerPanic` and an injected **budget denial** either
/// degrades to the row-identical fallback (admission seams) or
/// surfaces as `EvalError::MemoryBudget` (check seams) — never a
/// process panic — and the same catalog (shared relation caches,
/// global worker pool) answers the next, unguarded query correctly.
#[test]
fn fault_matrix_structured_errors_and_survival() {
    for case in seam_cases() {
        let catalog = (case.catalog)();
        let q = (case.query)();
        let reference = Engine::new(&catalog, Conventions::sql())
            .with_threads(case.threads)
            .eval_collection(&q)
            .unwrap();

        let panicked = Engine::new(&catalog, Conventions::sql())
            .with_threads(case.threads)
            .with_fault(FaultPlan {
                seam: case.seam,
                at: 1,
                kind: FaultKind::Panic,
            })
            .eval_collection(&q);
        match panicked {
            Err(EvalError::WorkerPanic(msg)) => assert!(
                msg.contains(case.seam),
                "seam {}: panic message should name the seam, got `{msg}`",
                case.seam
            ),
            other => panic!(
                "seam {}: injected panic must surface as WorkerPanic, got {other:?}",
                case.seam
            ),
        }

        let denied = Engine::new(&catalog, Conventions::sql())
            .with_threads(case.threads)
            .with_fault(FaultPlan {
                seam: case.seam,
                at: 1,
                kind: FaultKind::Budget,
            })
            .eval_collection(&q);
        if case.budget_degrades {
            let rows = denied.unwrap_or_else(|e| {
                panic!(
                    "seam {}: a denied build must degrade, not fail: {e:?}",
                    case.seam
                )
            });
            assert_eq!(
                rows.rows, reference.rows,
                "seam {}: degraded fallback drifted",
                case.seam
            );
        } else {
            assert!(
                matches!(denied, Err(EvalError::MemoryBudget)),
                "seam {}: a budget trip at a check seam must surface structured, got {denied:?}",
                case.seam
            );
        }

        // Survival: the same catalog — shared relation-level caches,
        // the global worker pool — answers unguarded, identically.
        let after = Engine::new(&catalog, Conventions::sql())
            .with_threads(case.threads)
            .eval_collection(&q)
            .unwrap();
        assert_eq!(
            after.rows, reference.rows,
            "seam {}: post-fault rerun drifted",
            case.seam
        );
    }

    // The fixpoint-round seam needs a recursive program.
    let catalog = chain_catalog(24, 0, 3);
    let p = fx::eq16();
    let reference = Engine::new(&catalog, Conventions::set())
        .eval_program(&p)
        .unwrap();
    for (kind, expect) in [
        (FaultKind::Panic, "WorkerPanic"),
        (FaultKind::Budget, "MemoryBudget"),
    ] {
        let out = Engine::new(&catalog, Conventions::set())
            .with_fault(FaultPlan {
                seam: seam::FIXPOINT_ROUND,
                at: 1,
                kind,
            })
            .eval_program(&p);
        let structured = matches!(
            (&out, expect),
            (Err(EvalError::WorkerPanic(_)), "WorkerPanic")
                | (Err(EvalError::MemoryBudget), "MemoryBudget")
        );
        assert!(
            structured,
            "fixpoint-round {kind:?}: expected {expect}, got {out:?}"
        );
    }
    let after = Engine::new(&catalog, Conventions::set())
        .eval_program(&p)
        .unwrap();
    assert_eq!(
        after.defined["A"].rows, reference.defined["A"].rows,
        "fixpoint-round: post-fault rerun drifted"
    );
}

/// CI smoke, env-armed: with `ARC_FAULT=seam:N[:kind]` in the
/// environment, drive the per-seam battery through env-configured
/// engines and assert every outcome is either complete or a structured
/// guard error — never a process panic — and that a second run of the
/// same spec produces the identical outcome (the harness is
/// deterministic). Trivially passes when `ARC_FAULT` is unset, so the
/// plain test suite is unaffected.
#[test]
fn arc_fault_smoke() {
    if std::env::var("ARC_FAULT")
        .unwrap_or_default()
        .trim()
        .is_empty()
    {
        return;
    }
    for case in seam_cases() {
        let catalog = (case.catalog)();
        let q = (case.query)();
        let run = || {
            Engine::new(&catalog, Conventions::sql())
                .with_threads(case.threads)
                .eval_collection(&q)
        };
        let first = run();
        match &first {
            Ok(_)
            | Err(EvalError::WorkerPanic(_))
            | Err(EvalError::MemoryBudget)
            | Err(EvalError::Cancelled)
            | Err(EvalError::DeadlineExceeded) => {}
            Err(other) => panic!(
                "battery {}: ARC_FAULT produced a non-guard error: {other:?}",
                case.seam
            ),
        }
        let second = run();
        assert_eq!(
            first, second,
            "battery {}: fault injection must be deterministic",
            case.seam
        );
    }
}
