//! Workspace invariant 13 — **ordered index access is invisible**: for
//! any program and instance, the engine returns the same rows (same
//! order, same multiplicities — stronger than the bag-identity the
//! invariant asks for) with `ARC_INDEX` on and off, across:
//!
//! * all three evaluation strategies (planned / nested-loop / hash-join),
//! * both convention presets (SQL three-valued and set two-valued),
//! * NULL/NaN-heavy and mixed-type instances (the class-ordering corners
//!   the ordered index's binary search must get right),
//! * `ARC_THREADS` 1 and 4 (the index selection partitions like a scan's
//!   selection vector),
//! * analyzed catalogs — only statistics make index-range a candidate,
//!   so every proptest case runs post-`ANALYZE`,
//! * prefix gaps: predicates the bound cannot consume (a second range
//!   column, `<>`) are demoted to post-filters and must not change rows.
//!
//! Errors must surface identically too: a selective index bound ordered
//! before an erroring post-filter skips exactly the rows the full scan's
//! pushed-down filter would have skipped — never more, never fewer.

use arc_analysis::{random_catalog, random_conjunctive_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_core::dsl as d;
use arc_core::value::Value;
use arc_engine::{Catalog, Engine, EvalStrategy, Relation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scaled-up instances so scans clear the vectorization floor and the
/// partition gate (the paths the index selection composes with).
fn big_spec(with_nulls: bool) -> InstanceSpec {
    let mut spec = if with_nulls {
        InstanceSpec::rs_with_nulls(0.25)
    } else {
        InstanceSpec::rs()
    };
    for r in &mut spec.relations {
        r.rows = 48..120;
        r.domain = 0..10;
    }
    spec
}

/// Evaluate `q` with indexes off (the scan-path reference) and on, under
/// every strategy × thread count, asserting row-identical output.
fn assert_index_invisible(catalog: &Catalog, q: &arc_core::ast::Collection, conv: Conventions) {
    for strategy in [
        EvalStrategy::Planned,
        EvalStrategy::NestedLoop,
        EvalStrategy::HashJoin,
    ] {
        let reference = Engine::new(catalog, conv)
            .with_strategy(strategy)
            .with_indexes(false)
            .with_threads(1)
            .eval_collection(q)
            .unwrap();
        for threads in [1usize, 4] {
            let indexed = Engine::new(catalog, conv)
                .with_strategy(strategy)
                .with_indexes(true)
                .with_threads(threads)
                .eval_collection(q)
                .unwrap();
            assert_eq!(
                reference.rows, indexed.rows,
                "strategy {strategy:?} threads {threads} conv {conv:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 13 over generated conjunctive queries (joins plus
    /// range-shaped constant selections), with and without NULLs, both
    /// conventions, on `ANALYZE`d catalogs.
    #[test]
    fn indexed_identical_on_conjunctive_queries(
        seed in 0u64..300,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in any::<bool>(),
    ) {
        let spec = big_spec(with_nulls);
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7717));
        let mut catalog = random_catalog(&spec, &mut rng);
        catalog.analyze();
        for conv in [Conventions::sql(), Conventions::set()] {
            assert_index_invisible(&catalog, &q, conv);
        }
    }
}

/// The acceptance demonstration on the skewed range-join fixture: with
/// statistics the planner walks the ordered index; with `ARC_INDEX=off`
/// it falls back to the (vectorized) full scan — and the rows match
/// exactly either way.
#[test]
fn skew_fixture_plans_index_range_and_matches_the_scan() {
    let n = 1024;
    let mut catalog = fx::stats_skew_catalog(n);
    catalog.analyze();
    let q = fx::eq1_range(n);

    let on = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_indexes(true)
        .explain_collection(&q)
        .unwrap();
    assert!(
        on.contains("index-range on [A..] R as r"),
        "analyzed plan must walk the ordered index:\n{on}"
    );
    let off = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_indexes(false)
        .explain_collection(&q)
        .unwrap();
    assert!(
        off.contains("scan R as r") && !off.contains("index-range"),
        "ARC_INDEX=off must fall back to the scan:\n{off}"
    );

    for conv in [Conventions::sql(), Conventions::set()] {
        assert_index_invisible(&catalog, &q, conv);
    }
    let rows = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(rows.deduped().len(), 7, "r.A > {} keeps 7 rows", n - 8);
}

/// An unselective bound must NOT flip to index-range even on an analyzed
/// catalog: `r.A > 8` keeps ~99% of the rows, so the planner keeps the
/// full scan (the bench's "index only fires when it pays" gate).
#[test]
fn unselective_bounds_keep_the_full_scan() {
    let mut catalog = fx::stats_skew_catalog(1024);
    catalog.analyze();
    let q = fx::q("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ r.A > 8]}");
    let plan = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_indexes(true)
        .explain_collection(&q)
        .unwrap();
    assert!(
        !plan.contains("index-range"),
        "an unselective bound must stay a scan:\n{plan}"
    );
}

/// The multi-column prefix fixture: `r.A = 3` extends the prefix,
/// `r.B > n-64` closes it, and `r.C <> 1` is demoted to a post-filter —
/// all visible in `EXPLAIN`, with rows identical to the scan path.
#[test]
fn eq_prefix_and_demoted_residue_match_the_scan() {
    let n = 2048;
    let mut catalog = fx::prefix_catalog(n);
    catalog.analyze();
    let q = fx::prefix_range(n);

    let plan = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_indexes(true)
        .explain_collection(&q)
        .unwrap();
    assert!(
        plan.contains("index-range on [A, B..] R as r"),
        "the constant equality must extend the bound prefix:\n{plan}"
    );
    assert!(
        plan.contains("filter: r.C <> 1"),
        "the residue must be demoted to a post-filter:\n{plan}"
    );

    for conv in [Conventions::sql(), Conventions::set()] {
        assert_index_invisible(&catalog, &q, conv);
    }
    // 2048/8 = 256 rows have A = 3; of those, B > 1984 keeps 8; C <> 1
    // drops the `i ≡ 1 (mod 5)` survivors.
    let rows = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    let scan = Engine::new(&catalog, Conventions::sql())
        .with_indexes(false)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(rows.rows, scan.rows);
    assert!(!rows.rows.is_empty());
}

/// A relation exercising the ordered index's class-ordering corners: a
/// mixed-type column (ints, strings, floats incl. NaN, bools, NULLs), a
/// NaN-heavy float column, and a clean int column.
fn corner_catalog(n: i64) -> Catalog {
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                match i % 6 {
                    0 => Value::Int(i % 11),
                    1 => Value::str(format!("s{}", i % 5)),
                    2 => Value::Float(f64::NAN),
                    3 => Value::Float((i % 7) as f64 + 0.5),
                    4 => Value::Bool(i % 2 == 0),
                    _ => Value::Null,
                },
                if i % 3 == 0 {
                    Value::Float(f64::NAN)
                } else {
                    Value::Float((i % 13) as f64)
                },
                Value::Int(i % 17),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    let mut rel = Relation::new("M".to_string(), &["A", "B", "C"]);
    for row in rows {
        rel.push(row);
    }
    c.add(rel);
    c
}

/// Mixed-type / NaN columns at chunk-boundary sizes: every range bound
/// (int, float, string constants; one- and two-sided) agrees with the
/// row path exactly, because the search replicates `Value::compare`
/// within the constant's class window.
#[test]
fn class_ordering_corners_match_the_scan() {
    for n in [1023i64, 1024, 1025] {
        let mut catalog = corner_catalog(n);
        catalog.analyze();
        let filter_sets: Vec<Vec<arc_core::ast::Formula>> = vec![
            vec![d::gt(d::col("m", "A"), d::int(8))],
            vec![d::lt(d::col("m", "A"), d::text("s1"))],
            vec![
                d::ge(d::col("m", "A"), d::flt(2.5)),
                d::le(d::col("m", "A"), d::flt(4.5)),
            ],
            vec![d::gt(d::col("m", "B"), d::flt(10.0))],
            vec![
                d::gt(d::col("m", "C"), d::int(13)),
                d::lt(d::col("m", "B"), d::flt(3.0)),
            ],
            vec![
                d::ge(d::col("m", "C"), d::int(15)),
                d::ne(d::col("m", "A"), d::int(3)),
            ],
        ];
        for filters in filter_sets {
            let mut preds = vec![d::assign("Q", "C", d::col("m", "C"))];
            preds.extend(filters);
            let q = d::collection("Q", &["C"], d::exists(&[d::bind("m", "M")], d::and(preds)));
            for conv in [Conventions::sql(), Conventions::set()] {
                assert_index_invisible(&catalog, &q, conv);
            }
        }
    }
}

/// Error equivalence: a selective index bound ordered before an erroring
/// post-filter must produce the identical outcome — the bound admits
/// exactly the rows the pushed-down filter would have admitted, so the
/// erroring filter sees the same survivors (or the same empty set).
#[test]
fn errors_surface_identically() {
    let n = 2048;
    let mut catalog = fx::prefix_catalog(n);
    catalog.analyze();
    // `r.B > n-64` keeps rows, so `r.NOPE` errors either way; `r.B > n`
    // keeps none, so both paths return the empty result.
    for (bound, label) in [(n as i64 - 64, "surviving"), (n as i64, "empty")] {
        let q = d::collection(
            "Q",
            &["B"],
            d::exists(
                &[d::bind("r", "R")],
                d::and([
                    d::assign("Q", "B", d::col("r", "B")),
                    d::gt(d::col("r", "B"), d::int(bound)),
                    d::le(d::col("r", "NOPE"), d::int(3)),
                ]),
            ),
        );
        for strategy in [
            EvalStrategy::Planned,
            EvalStrategy::NestedLoop,
            EvalStrategy::HashJoin,
        ] {
            let off = Engine::new(&catalog, Conventions::sql())
                .with_strategy(strategy)
                .with_indexes(false)
                .eval_collection(&q);
            let on = Engine::new(&catalog, Conventions::sql())
                .with_strategy(strategy)
                .with_indexes(true)
                .eval_collection(&q);
            assert_eq!(off, on, "outcome drift ({label}) under {strategy:?}");
        }
    }
}

/// A malformed `ARC_INDEX` value surfaces as a descriptive configuration
/// error (parse-level check; the engine wiring follows the same
/// deferred-error path as `ARC_EVAL_STRATEGY`).
#[test]
fn malformed_index_value_is_descriptive() {
    let err = arc_engine::eval::strategy::parse_indexes(Some("sideways")).unwrap_err();
    assert!(err.contains("ARC_INDEX"), "{err}");
    assert!(err.contains("sideways"), "{err}");
    assert!(err.contains("expected"), "{err}");
}
