//! Property-based workspace invariants (DESIGN.md §7), over randomly
//! generated queries and instances.

use arc_analysis::{random_catalog, random_conjunctive_query, unnest, InstanceSpec};
use arc_core::conventions::{Conventions, Semantics};
use arc_core::pattern::signature;
use arc_engine::Engine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: SQL round-trip — rendering a lowered query back to SQL
    /// and re-lowering preserves execution results.
    #[test]
    fn sql_round_trip_preserves_execution(seed in 0u64..500, joins in 1usize..4, sels in 0usize..3) {
        let spec = InstanceSpec::rs();
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let sql = arc_sql::arc_to_sql(&q, &Conventions::sql()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let catalog = random_catalog(&spec, &mut rng);
        let relowered = arc_sql::sql_to_arc(&sql, &catalog.schema_map())
            .unwrap_or_else(|e| panic!("re-lower failed: {e}\n{sql}"));
        let engine = Engine::new(&catalog, Conventions::sql());
        let a = engine.eval_collection(&q).unwrap();
        let b = engine.eval_collection(&relowered).unwrap();
        prop_assert!(a.bag_eq(&b), "sql:\n{}\n{}\nvs\n{}", sql, a, b);
    }

    /// Invariant 3: conventions are orthogonal to patterns — evaluating the
    /// same query under different conventions never changes its signature
    /// (trivially, signatures don't see conventions) and set-results are a
    /// subset of bag-results' support.
    #[test]
    fn conventions_orthogonal_to_patterns(seed in 0u64..500) {
        let spec = InstanceSpec::rs();
        let q = random_conjunctive_query(&spec, 2, 1, seed);
        let sig_before = signature(&q).canon;
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = random_catalog(&spec, &mut rng);
        let set_result = Engine::new(&catalog, Conventions::set()).eval_collection(&q).unwrap();
        let bag_result = Engine::new(&catalog, Conventions::sql()).eval_collection(&q).unwrap();
        prop_assert_eq!(signature(&q).canon, sig_before);
        prop_assert!(set_result.set_eq(&bag_result.deduped()));
    }

    /// Invariant: unnesting is sound under set semantics for generated
    /// queries that contain a nested positive scope.
    #[test]
    fn unnest_sound_under_set_semantics(seed in 0u64..300) {
        let spec = InstanceSpec::rs();
        // Wrap a generated query's quant in an artificial nesting.
        let inner = random_conjunctive_query(&spec, 2, 1, seed);
        let nested = arc_core::ast::Collection {
            head: inner.head.clone(),
            body: arc_core::ast::Formula::Quant(Box::new(arc_core::ast::Quant {
                bindings: vec![],
                grouping: None,
                join: None,
                body: inner.body.clone(),
            })),
        };
        let flat = unnest(&nested);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(99));
        let catalog = random_catalog(&spec, &mut rng);
        let engine = Engine::new(&catalog, Conventions::set());
        let a = engine.eval_collection(&nested).unwrap();
        let b = engine.eval_collection(&flat).unwrap();
        prop_assert!(a.set_eq(&b));
    }

    /// Invariant 5: naive and semi-naive fixpoints agree on random graphs.
    #[test]
    fn fixpoint_strategies_agree(depth in 2usize..20, extra in 0usize..8, seed in 0u64..100) {
        let catalog = arc_analysis::chain_catalog(depth, extra, seed);
        let program = arc_bench::fixtures::eq16();
        let engine = Engine::new(&catalog, Conventions::set());
        let naive = engine
            .eval_program_with(&program, arc_engine::FixpointStrategy::Naive)
            .unwrap();
        let semi = engine
            .eval_program_with(&program, arc_engine::FixpointStrategy::SemiNaive)
            .unwrap();
        prop_assert!(naive.defined["A"].set_eq(&semi.defined["A"]));
    }

    /// Invariant 6: deduplication by grouping on all projected attributes
    /// equals set-semantics deduplication.
    #[test]
    fn dedup_is_grouping_on_all_attrs(seed in 0u64..300) {
        use arc_core::dsl::*;
        let spec = InstanceSpec::rs();
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = random_catalog(&spec, &mut rng);
        let plain = collection(
            "Q",
            &["A", "B"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "B", col("r", "B")),
                ]),
            ),
        );
        let grouped = collection(
            "Q",
            &["A", "B"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A"), ("r", "B")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "B", col("r", "B")),
                ]),
            ),
        );
        // Under bag semantics: grouping deduplicates; compare with the
        // set-semantics evaluation of the plain projection.
        let bag_grouped = Engine::new(&catalog, Conventions::sql()).eval_collection(&grouped).unwrap();
        let set_plain = Engine::new(&catalog, Conventions::set()).eval_collection(&plain).unwrap();
        prop_assert!(bag_grouped.bag_eq(&set_plain));
    }

    /// Bag-semantics conservation: a set-evaluated result is always the
    /// dedup of the bag-evaluated one.
    #[test]
    fn set_is_dedup_of_bag(seed in 0u64..300, joins in 1usize..3) {
        let spec = InstanceSpec::rs();
        let q = random_conjunctive_query(&spec, joins, 1, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let catalog = random_catalog(&spec, &mut rng);
        let set_r = Engine::new(&catalog, Conventions::set()).eval_collection(&q).unwrap();
        let bag_r = Engine::new(&catalog, Conventions::sql()).eval_collection(&q).unwrap();
        prop_assert!(set_r.bag_eq(&bag_r.deduped()));
    }

    /// Invariant 7: evaluation strategies are observably identical — the
    /// hash-join strategy returns exactly the nested-loop reference's rows
    /// (same tuples, same emission order) on random conjunctive queries
    /// over random instances, with and without NULLs.
    #[test]
    fn eval_strategies_tuple_for_tuple_identical(
        seed in 0u64..400,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in proptest::prelude::any::<bool>(),
    ) {
        use arc_engine::EvalStrategy;
        let spec = if with_nulls {
            InstanceSpec::rs_with_nulls(0.2)
        } else {
            InstanceSpec::rs()
        };
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919));
        let catalog = random_catalog(&spec, &mut rng);
        for conv in [Conventions::sql(), Conventions::set(), Conventions::souffle()] {
            let reference = Engine::new(&catalog, conv)
                .with_strategy(EvalStrategy::NestedLoop)
                .eval_collection(&q)
                .unwrap();
            let hashed = Engine::new(&catalog, conv)
                .with_strategy(EvalStrategy::HashJoin)
                .eval_collection(&q)
                .unwrap();
            prop_assert_eq!(&reference.rows, &hashed.rows, "conv {:?}", conv);
        }
    }
}

#[test]
fn semantics_enum_is_the_only_difference() {
    // A direct spot-check of Semantics as a pure switch.
    assert_ne!(Semantics::Set, Semantics::Bag);
}
