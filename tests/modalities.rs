//! Cross-modality integration: the same query travels through every
//! modality (comprehension text, ALT JSON, SQL, Datalog, higraph) and the
//! engine — losslessly with respect to both pattern and results.

use arc_core::binder::Binder;
use arc_core::conventions::Conventions;
use arc_core::pattern::signature;
use arc_engine::{Catalog, Engine, Relation};

fn grouped_catalog() -> Catalog {
    Catalog::new().with(Relation::from_ints(
        "R",
        &["A", "B"],
        &[&[1, 10], &[1, 20], &[2, 5]],
    ))
}

#[test]
fn five_way_modality_consistency() {
    // Start in the comprehension modality (Eq (3)).
    let src = "{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}";
    let from_text = arc_parser::parse_collection(src).unwrap();

    // → ALT JSON and back.
    let json = arc_core::alt::to_json(&from_text);
    let from_json = arc_core::alt::from_json(&json).unwrap();
    assert_eq!(from_text, from_json);

    // → printed text and back.
    let printed = arc_parser::print_collection(&from_text);
    let reparsed = arc_parser::parse_collection(&printed).unwrap();
    assert_eq!(from_text.normalized(), reparsed.normalized());

    // → SQL and back (pattern-preserving up to naming).
    let catalog = grouped_catalog();
    let sql = arc_sql::arc_to_sql(&from_text, &Conventions::sql()).unwrap();
    let from_sql = arc_sql::sql_to_arc(&sql, &catalog.schema_map()).unwrap();

    // → higraph (structure counts match the ALT).
    let hg = arc_higraph::build_collection(&from_text);
    assert_eq!(hg.count_edges(|_| true), 2, "two predicates → two edges");
    assert_eq!(
        hg.count_nodes(|k| matches!(k, arc_higraph::NodeKind::Scope { grouping: true })),
        1
    );

    // All executable forms agree.
    let engine = Engine::new(&catalog, Conventions::sql());
    let a = engine.eval_collection(&from_text).unwrap();
    let b = engine.eval_collection(&from_sql).unwrap();
    assert!(a.bag_eq(&b), "{a}\nvs\n{b}");
    assert_eq!(a.len(), 2);

    // Pattern identity across the text/JSON path.
    assert_eq!(signature(&from_text).canon, signature(&from_json).canon);
}

#[test]
fn datalog_and_sql_front_ends_agree_on_shared_fragment() {
    // The same conjunctive query through both front-ends.
    let catalog = Catalog::new()
        .with(Relation::from_ints("R", &["a", "b"], &[&[1, 7], &[2, 8]]))
        .with(Relation::from_ints("S", &["b", "c"], &[&[7, 0], &[8, 1]]));

    let from_sql = arc_sql::sql_to_arc(
        "select R.a from R, S where R.b = S.b and S.c = 0",
        &catalog.schema_map(),
    )
    .unwrap();

    let dl = arc_datalog::parse_datalog(
        ".decl R(a: number, b: number)\n\
         .decl S(b: number, c: number)\n\
         .decl Q(a: number)\n\
         Q(x) :- R(x, y), S(y, 0).\n",
    )
    .unwrap();
    let from_dl_prog = arc_datalog::lower_program(&dl).unwrap();

    let engine = Engine::new(&catalog, Conventions::set());
    let a = engine.eval_collection(&from_sql).unwrap();
    let b = engine.eval_program(&from_dl_prog).unwrap().defined["Q"].clone();
    assert!(a.set_eq(&b), "{a}\nvs\n{b}");

    // And their patterns coincide (ARC as the Rosetta Stone).
    let sig_sql = signature(&from_sql);
    let sig_dl = signature(&from_dl_prog.definitions[0].collection);
    assert_eq!(sig_sql.canon, sig_dl.canon);
}

#[test]
fn binder_validates_every_fixture() {
    use arc_bench::fixtures as fx;
    let schemas = fx::all_schemas();
    // Collections with self-contained schemas bind closed-world; the rest
    // bind open-world. All must be valid.
    for (name, c) in [
        ("eq1", fx::eq1()),
        ("eq2", fx::eq2()),
        ("eq3", fx::eq3()),
        ("eq7", fx::eq7()),
        ("eq8", fx::eq8()),
        ("eq10", fx::eq10()),
        ("eq12", fx::eq12()),
        ("eq17", fx::eq17()),
        ("eq18", fx::eq18()),
        ("eq19", fx::eq19()),
        ("eq20", fx::eq20()),
        ("eq21", fx::eq21()),
        ("eq22", fx::eq22()),
        ("eq26", fx::eq26()),
        ("eq27", fx::eq27()),
        ("eq28", fx::eq28()),
        ("eq29", fx::eq29()),
        ("eq15", fx::eq15()),
    ] {
        let info = Binder::new().bind_collection(&c);
        assert!(info.is_valid(), "{name}: {:?}", info.diagnostics);
    }
    let info = Binder::with_schemas(schemas).bind_collection(&fx::eq1());
    assert!(info.is_valid());

    // Programs too (recursion + abstract relations).
    let info = Binder::new().bind_program(&fx::eq16());
    assert!(info.is_valid(), "{:?}", info.diagnostics);
    let info = Binder::new().bind_program(&fx::eq24_program());
    assert!(info.is_valid(), "{:?}", info.diagnostics);
    assert_eq!(info.abstract_collections, vec!["Subset".to_string()]);
}

#[test]
fn alt_text_modality_matches_paper_layout_for_eq27() {
    // Fig 21g, verbatim layout.
    use arc_bench::fixtures as fx;
    let rendered = arc_core::alt::render_collection(&fx::eq27());
    let expected = "\
COLLECTION
├─ HEAD: Q(id)
└─ QUANTIFIER ∃
   ├─ BINDING: r ∈ R
   └─ AND ∧
      ├─ PREDICATE: Q.id = r.id
      └─ QUANTIFIER ∃
         ├─ BINDING: s ∈ S
         ├─ GROUPING: ∅
         └─ AND ∧
            ├─ PREDICATE: s.id = r.id
            └─ PREDICATE: r.q = count(s.d)
";
    assert_eq!(rendered, expected);
}

#[test]
fn higraph_svg_and_dot_render_for_all_fixtures() {
    use arc_bench::fixtures as fx;
    for c in [
        fx::eq1(),
        fx::eq3(),
        fx::eq8(),
        fx::eq18(),
        fx::eq22(),
        fx::eq26(),
        fx::eq29(),
    ] {
        let hg = arc_higraph::build_collection(&c);
        let svg = arc_higraph::render_svg(&hg);
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
        let dot = arc_higraph::render_dot(&hg);
        assert!(dot.starts_with("digraph"));
        assert!(!arc_higraph::render_outline(&hg).is_empty());
    }
}
