//! Per-figure integration tests: each figure's claim, checked end-to-end
//! through the fixtures the benchmark harness uses. (The engine-level unit
//! tests check the same semantics from hand-built ASTs; here everything
//! goes through the comprehension parser, as in the paper's notation.)

use arc_analysis::{classify, AggPattern};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_core::pattern::signature;
use arc_core::value::{Truth, Value};
use arc_engine::{Engine, FixpointStrategy};

#[test]
fn fig2_eq1_runs() {
    let catalog = fx::rs_catalog(50);
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&fx::eq1())
        .unwrap();
    assert!(!out.is_empty());
}

#[test]
fn fig4_fig5_fio_foi_equivalence() {
    let catalog = fx::grouped_catalog(40, 5);
    let engine = Engine::new(&catalog, Conventions::set());
    let fio = engine.eval_collection(&fx::eq3()).unwrap();
    let foi = engine.eval_collection(&fx::eq7()).unwrap();
    assert!(fio.set_eq(&foi));
    assert_eq!(classify(&fx::eq3()).aggregates[0].pattern, AggPattern::Fio);
    assert_eq!(classify(&fx::eq7()).aggregates[0].pattern, AggPattern::Foi);
}

#[test]
fn fig6_7_8_same_answer_different_signatures() {
    let catalog = fx::dept_paper_catalog();
    let engine = Engine::new(&catalog, Conventions::set());
    let a = engine.eval_collection(&fx::eq8()).unwrap();
    let b = engine.eval_collection(&fx::eq10()).unwrap();
    let c = engine.eval_collection(&fx::eq12()).unwrap();
    assert!(a.set_eq(&b) && b.set_eq(&c));
    assert_eq!(a.len(), 1);
    assert_eq!(a.rows[0][1], Value::Float(55.0));
    // The paper's signature observation: 1 vs 3 vs 2 copies of R.
    assert_eq!(signature(&fx::eq8()).features["rel:R"], 1);
    assert_eq!(signature(&fx::eq10()).features["rel:R"], 3);
    assert_eq!(signature(&fx::eq12()).features["rel:R"], 2);
}

#[test]
fn fig9_sentences() {
    // R(1,2): count over S = 2 satisfies (13). R(2,5): q=5 > count=0, so
    // the integrity constraint (14) is violated (False).
    let catalog = arc_engine::Catalog::new()
        .with(arc_engine::Relation::from_ints(
            "R",
            &["id", "q"],
            &[&[1, 2], &[2, 5]],
        ))
        .with(arc_engine::Relation::from_ints(
            "S",
            &["id", "d"],
            &[&[1, 10], &[1, 11]],
        ));
    let engine = Engine::new(&catalog, Conventions::sql());
    assert_eq!(engine.eval_sentence(&fx::eq13()).unwrap(), Truth::True);
    assert_eq!(engine.eval_sentence(&fx::eq14()).unwrap(), Truth::False);

    // On an instance where every id's q ≤ its count, (14) holds.
    let catalog2 = fx::count_bug_catalog(false);
    let engine2 = Engine::new(&catalog2, Conventions::sql());
    assert_eq!(engine2.eval_sentence(&fx::eq14()).unwrap(), Truth::True);
}

#[test]
fn fig10_recursion_both_strategies() {
    let catalog = arc_analysis::chain_catalog(32, 5, 2);
    let engine = Engine::new(&catalog, Conventions::set());
    let naive = engine
        .eval_program_with(&fx::eq16(), FixpointStrategy::Naive)
        .unwrap();
    let semi = engine
        .eval_program_with(&fx::eq16(), FixpointStrategy::SemiNaive)
        .unwrap();
    assert!(naive.defined["A"].set_eq(&semi.defined["A"]));
    assert!(!naive.defined["A"].is_empty());
}

#[test]
fn fig12_outer_join_null_padding() {
    let catalog = fx::fig12_catalog();
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&fx::eq18())
        .unwrap();
    let rows = out.sorted_rows();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[1], vec![Value::Int(2), Value::Null]);
}

#[test]
fn fig15_reified_arithmetic_chain() {
    let catalog = fx::fig15_catalog();
    let engine = Engine::new(&catalog, Conventions::set());
    let a = engine.eval_collection(&fx::eq19()).unwrap();
    let b = engine.eval_collection(&fx::eq20()).unwrap();
    let c = engine.eval_collection(&fx::eq21()).unwrap();
    assert!(a.set_eq(&b) && b.set_eq(&c));
    assert_eq!(a.len(), 1);
}

#[test]
fn fig16_19_abstract_relations() {
    let catalog = fx::likes_paper_catalog();
    let engine = Engine::new(&catalog, Conventions::set());
    let direct = engine.eval_collection(&fx::eq22()).unwrap();
    let modular = engine.eval_program(&fx::eq24_program()).unwrap();
    assert!(direct.set_eq(modular.query.as_ref().unwrap()));
    assert_eq!(direct.rows[0][0], Value::str("b"));
}

#[test]
fn fig20_matmul_2x2() {
    let catalog = arc_engine::Catalog::with_standard_externals()
        .with(arc_engine::Relation::from_ints(
            "A",
            &["row", "col", "val"],
            &[&[0, 0, 1], &[0, 1, 2], &[1, 0, 3], &[1, 1, 4]],
        ))
        .with(arc_engine::Relation::from_ints(
            "B",
            &["row", "col", "val"],
            &[&[0, 0, 5], &[0, 1, 6], &[1, 0, 7], &[1, 1, 8]],
        ));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&fx::eq26())
        .unwrap();
    assert_eq!(out.len(), 4);
    let rows = out.sorted_rows();
    assert_eq!(rows[0], vec![Value::Int(0), Value::Int(0), Value::Int(19)]);
    assert_eq!(rows[3], vec![Value::Int(1), Value::Int(1), Value::Int(50)]);
}

#[test]
fn fig21_count_bug_all_versions() {
    // Paper instance: v1 = {9}, v2 = ∅, v3 = {9}.
    let catalog = fx::count_bug_catalog(true);
    let engine = Engine::new(&catalog, Conventions::sql());
    let v1 = engine.eval_collection(&fx::eq27()).unwrap();
    let v2 = engine.eval_collection(&fx::eq28()).unwrap();
    let v3 = engine.eval_collection(&fx::eq29()).unwrap();
    assert_eq!(v1.len(), 1);
    assert!(v2.is_empty());
    assert!(v1.bag_eq(&v3));

    // Benign instance: all three agree.
    let catalog = fx::count_bug_catalog(false);
    let engine = Engine::new(&catalog, Conventions::sql());
    let v1 = engine.eval_collection(&fx::eq27()).unwrap();
    let v2 = engine.eval_collection(&fx::eq28()).unwrap();
    let v3 = engine.eval_collection(&fx::eq29()).unwrap();
    assert!(v1.bag_eq(&v3));
    // v2 drops R-rows whose id has no S row (id 3 with q=0 → count 0).
    assert!(v2.len() <= v1.len());
}

#[test]
fn conventions_flip_eq15_results_only() {
    let catalog = fx::eq15_catalog();
    let souffle = Engine::new(&catalog, Conventions::souffle())
        .eval_collection(&fx::eq15())
        .unwrap();
    let sql = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&fx::eq15())
        .unwrap();
    assert_eq!(souffle.rows[0], vec![Value::Int(1), Value::Int(0)]);
    assert_eq!(sql.rows[0], vec![Value::Int(1), Value::Null]);
    // Orthogonality: the signature never saw the conventions.
    assert_eq!(signature(&fx::eq15()).canon, signature(&fx::eq15()).canon);
}

#[test]
fn experiments_binary_fixtures_all_parse() {
    // Guard: every fixture used by the experiments binary stays parseable.
    let _ = (
        fx::eq1(),
        fx::eq2(),
        fx::eq3(),
        fx::eq7(),
        fx::eq8(),
        fx::eq10(),
        fx::eq12(),
        fx::eq13(),
        fx::eq14(),
        fx::eq15(),
        fx::eq16(),
        fx::eq17(),
        fx::eq18(),
        fx::eq19(),
        fx::eq20(),
        fx::eq21(),
        fx::eq22(),
        fx::eq24_program(),
        fx::eq26(),
        fx::eq27(),
        fx::eq28(),
        fx::eq29(),
    );
}
