//! Workspace invariants for the parallel executor (`arc-exec`):
//!
//! * **Invariant 9** — partitioned execution is *identical* to sequential
//!   execution: for generated programs over generated instances, the
//!   engine returns the same rows **in the same order** under
//!   `ARC_THREADS` ∈ {1, 2, 8}. (The guarantee is stronger than the
//!   bag-identity the issue asks for: morsels are merged in scan order,
//!   so even emission order is preserved — which the deterministic-merge
//!   unit tests below pin down explicitly.)
//! * Runtime **errors** surface identically: the parallel path reports
//!   the error the sequential enumeration would have hit first.
//! * A **golden `EXPLAIN`** showing the `partition(n)` operator on the
//!   partition-axis step of a parallel engine's plan.

use arc_analysis::{random_catalog, random_conjunctive_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{Engine, EvalStrategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The default `InstanceSpec::rs` generates 0..8-row relations — too
/// small for the partition gate (`PARALLEL_MIN_ROWS`). Scale it up so
/// generated programs actually exercise the morsel path.
fn big_spec(with_nulls: bool) -> InstanceSpec {
    let mut spec = if with_nulls {
        InstanceSpec::rs_with_nulls(0.2)
    } else {
        InstanceSpec::rs()
    };
    for r in &mut spec.relations {
        r.rows = 32..96;
        r.domain = 0..12;
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariant 9: `ARC_THREADS` ∈ {1, 2, 8} agree row-for-row on
    /// generated conjunctive queries, with and without NULLs, under both
    /// bag and set semantics.
    #[test]
    fn parallel_identical_to_sequential(
        seed in 0u64..300,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in proptest::prelude::any::<bool>(),
    ) {
        let spec = big_spec(with_nulls);
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(2693));
        let catalog = random_catalog(&spec, &mut rng);
        for conv in [Conventions::sql(), Conventions::set()] {
            let sequential = Engine::new(&catalog, conv)
                .with_threads(1)
                .eval_collection(&q)
                .unwrap();
            for threads in [2usize, 8] {
                let parallel = Engine::new(&catalog, conv)
                    .with_threads(threads)
                    .eval_collection(&q)
                    .unwrap();
                prop_assert_eq!(
                    &sequential.rows,
                    &parallel.rows,
                    "threads {} conv {:?}",
                    threads,
                    conv
                );
            }
        }
    }

    /// Invariant 9, force-override corner: the partitioned path preserves
    /// even the force strategies' order-identical guarantee.
    #[test]
    fn parallel_preserves_forced_strategies(seed in 0u64..100, joins in 1usize..3) {
        let spec = big_spec(false);
        let q = random_conjunctive_query(&spec, joins, 1, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7013));
        let catalog = random_catalog(&spec, &mut rng);
        for strategy in [EvalStrategy::NestedLoop, EvalStrategy::HashJoin] {
            let sequential = Engine::new(&catalog, Conventions::sql())
                .with_strategy(strategy)
                .with_threads(1)
                .eval_collection(&q)
                .unwrap();
            let parallel = Engine::new(&catalog, Conventions::sql())
                .with_strategy(strategy)
                .with_threads(4)
                .eval_collection(&q)
                .unwrap();
            prop_assert_eq!(&sequential.rows, &parallel.rows, "strategy {:?}", strategy);
        }
    }
}

/// Deterministic bag merge: partitioned execution under bag semantics
/// concatenates morsel outputs in scan order, so repeated parallel runs
/// and the sequential run all emit the same row sequence.
#[test]
fn bag_merge_order_is_deterministic() {
    let catalog = fx::rs_catalog(512);
    let q = fx::eq19(); // non-equi joins: all scans, partition axis at step 0
    let catalog = {
        // eq19 needs R(A,B), S(B), T(B).
        let mut c = catalog;
        c.add(arc_engine::Relation::from_ints("S", &["B"], &[&[1], &[3]]));
        c.add(arc_engine::Relation::from_ints("T", &["B"], &[&[2], &[5]]));
        c
    };
    let sequential = Engine::new(&catalog, Conventions::sql())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    assert!(!sequential.rows.is_empty(), "fixture produces rows");
    for _ in 0..3 {
        let parallel = Engine::new(&catalog, Conventions::sql())
            .with_threads(4)
            .eval_collection(&q)
            .unwrap();
        assert_eq!(
            sequential.rows, parallel.rows,
            "bag merge must be deterministic and order-identical"
        );
    }
}

/// Grouped scopes under partitioned execution: members are folded into
/// the group map in scan order, so aggregates (including order-sensitive
/// member layouts) match the sequential engine exactly.
#[test]
fn parallel_grouped_aggregates_match() {
    let catalog = fx::grouped_catalog(1000, 17);
    let q = fx::eq3();
    let sequential = Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    let parallel = Engine::new(&catalog, Conventions::set())
        .with_threads(8)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sequential.rows, parallel.rows);
    assert_eq!(sequential.len(), 17);
}

/// Correlated (FOI) scopes: the outer scan partitions while each worker
/// evaluates the correlated nested scope per row.
#[test]
fn parallel_correlated_scopes_match() {
    let catalog = fx::grouped_catalog(300, 11);
    let q = fx::eq7();
    let sequential = Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    let parallel = Engine::new(&catalog, Conventions::set())
        .with_threads(4)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sequential.rows, parallel.rows);
}

/// Errors surface identically: the parallel path reports the earliest
/// morsel's error, which is the first error sequential enumeration hits.
#[test]
fn parallel_errors_match_sequential() {
    use arc_core::dsl::*;
    let catalog = fx::rs_catalog(256);
    // `r.NOPE` resolves for no row: the filter stays at the leaf and the
    // first enumerated environment errors.
    let q = collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R")],
            and([
                assign("Q", "A", col("r", "A")),
                le(col("r", "NOPE"), int(3)),
            ]),
        ),
    );
    let sequential = Engine::new(&catalog, Conventions::sql())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap_err();
    let parallel = Engine::new(&catalog, Conventions::sql())
        .with_threads(4)
        .eval_collection(&q)
        .unwrap_err();
    assert_eq!(sequential, parallel);
}

/// Golden `EXPLAIN` for a parallel engine: the partition-axis step gains
/// the `partition(n)` operator prefix; sequential engines (threads = 1)
/// render the classic plan (covered by the goldens in
/// `plan_equivalence.rs`).
#[test]
fn explain_partition_golden() {
    let catalog = fx::grouped_catalog(64, 8);
    let engine = Engine::new(&catalog, Conventions::set())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(4)
        // Pin the ambient guard knob too: a memory budget appends the
        // `governance:` note, and the goldens must not depend on it.
        .with_mem_budget(0);
    let plan = engine.explain_collection(&fx::eq3()).unwrap();
    let expected = "\
project Q(A, sm)
  aggregate γ r.A
    agg: Q.sm = sum(r.B)
    scope
      1: partition(4) scan R as r (est=64)
      emit: Q.A = r.A
";
    assert_eq!(plan, expected, "partition plan drifted:\n{plan}");
}
