//! Plan-cache effectiveness: correlated scopes must plan O(1) times per
//! query (not once per outer row), and repeated queries must skip
//! planning entirely through the global cache.
//!
//! The assertions read `arc_plan::planner_runs()`, a process-global
//! counter — so this file deliberately contains a **single** `#[test]`
//! (test binaries run one at a time under `cargo test`, and a single test
//! keeps the counter deltas attributable).

use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::Engine;

#[test]
fn plan_cache_eliminates_per_outer_row_planning() {
    // Eq (7): the FOI pattern — for each of the 400 outer rows, the
    // correlated nested grouped scope re-enters the planner with an
    // identical signature.
    let outer_rows = 400;
    let mut catalog = fx::grouped_catalog(outer_rows, 8);
    let q = fx::eq7();

    // Phase 1: first evaluation. The Ctx-level cache must collapse the
    // per-outer-row re-planning of the correlated scope to one run per
    // distinct (scope, signature); the whole query has a handful of
    // scopes, so the delta must be orders of magnitude below the outer
    // cardinality.
    let before = arc_plan::planner_runs();
    let first = Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    let first_eval_runs = arc_plan::planner_runs() - before;
    assert!(!first.is_empty(), "fixture produces rows");
    assert!(
        first_eval_runs < 10,
        "correlated scope replanned per outer row: {first_eval_runs} planner runs \
         for {outer_rows} outer rows"
    );

    // Phase 2: a repeated query (fresh engine, fresh Ctx, same AST) hits
    // the global cache for every scope — zero planner runs.
    let before = arc_plan::planner_runs();
    let second = Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    let second_eval_runs = arc_plan::planner_runs() - before;
    assert_eq!(
        second_eval_runs, 0,
        "repeated query must skip planning entirely (global plan cache)"
    );
    assert_eq!(first.rows, second.rows);

    // Phase 3: a re-parsed structurally-identical query (different AST
    // addresses, same program hash) also skips planning.
    let reparsed = fx::eq7();
    let before = arc_plan::planner_runs();
    let third = Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .eval_collection(&reparsed)
        .unwrap();
    assert_eq!(
        arc_plan::planner_runs() - before,
        0,
        "program hash must be structural, not address-based"
    );
    assert_eq!(first.rows, third.rows);

    // Phase 4: changed statistics (different row count) change the key —
    // the planner runs again rather than serving a stale-cardinality
    // plan.
    let catalog2 = fx::grouped_catalog(outer_rows + 1, 8);
    let before = arc_plan::planner_runs();
    Engine::new(&catalog2, Conventions::set())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    assert!(
        arc_plan::planner_runs() - before > 0,
        "changed cardinalities must re-plan"
    );

    // Phase 5: ANALYZE bumps the statistics epoch, which both cache
    // levels fold into their keys — the very same query on the very same
    // catalog must re-plan (the new statistics could shape a different
    // plan), then cache again.
    catalog.analyze();
    let before = arc_plan::planner_runs();
    let fifth = Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    assert!(
        arc_plan::planner_runs() - before > 0,
        "a post-ANALYZE evaluation must re-plan, not serve the stale-epoch plan"
    );
    assert!(first.bag_eq(&fifth), "statistics must not change results");
    let before = arc_plan::planner_runs();
    Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(
        arc_plan::planner_runs() - before,
        0,
        "the re-planned epoch must itself be cached"
    );
}
