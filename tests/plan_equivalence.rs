//! Workspace invariants for the plan layer (`arc-plan`):
//!
//! * **Invariant 8** — the planned pipeline (greedy join ordering,
//!   per-operator hash/scan choice, predicate pushdown) is *bag-identical*
//!   to the paper-faithful nested-loop reference on random conjunctive
//!   queries over random instances, with and without NULLs. (Join
//!   reordering legitimately changes enumeration order, so the guarantee
//!   is the multiset of rows — the force-override strategies keep the
//!   stronger order-identical guarantee, covered by invariant 7.)
//! * **Golden `EXPLAIN` snapshots** for three paper queries, so plan-shape
//!   changes are deliberate, reviewed diffs rather than silent drift.

use arc_analysis::{random_catalog, random_conjunctive_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{Engine, EvalStrategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 8: planned execution ≡ the nested-loop reference,
    /// tuple-for-tuple as bags, across conventions.
    #[test]
    fn planned_pipeline_bag_identical_to_reference(
        seed in 0u64..400,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in proptest::prelude::any::<bool>(),
    ) {
        let spec = if with_nulls {
            InstanceSpec::rs_with_nulls(0.2)
        } else {
            InstanceSpec::rs()
        };
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(6007));
        let catalog = random_catalog(&spec, &mut rng);
        for conv in [Conventions::sql(), Conventions::set(), Conventions::souffle()] {
            let reference = Engine::new(&catalog, conv)
                .with_strategy(EvalStrategy::NestedLoop)
                .eval_collection(&q)
                .unwrap();
            let planned = Engine::new(&catalog, conv)
                .with_strategy(EvalStrategy::Planned)
                .eval_collection(&q)
                .unwrap();
            prop_assert!(
                reference.bag_eq(&planned),
                "conv {:?}\nquery {:?}\nreference:\n{}\nplanned:\n{}",
                conv, q, reference, planned
            );
        }
    }
}

/// Golden plan for Eq (1) — the running TRC equi-join over an `ANALYZE`d
/// catalog: both relations are probed (S on its constant key, R on the
/// join key), both filters are pushed onto their steps, and the
/// `est=N` cardinalities come from the statistics (S's constant key
/// matches half its rows; R's probe divides by the 10 distinct join
/// keys) rather than the old flat `est=1`.
#[test]
fn explain_eq1_golden() {
    // `analyze()` pins the statistics state explicitly: the suite runs
    // under `ARC_STATS=off` too, where registration does not auto-analyze.
    let mut catalog = fx::rs_catalog(64);
    catalog.analyze();
    // `with_threads(1)`: the sequential plan rendering is the golden —
    // parallel engines add `partition(n)` prefixes (covered by
    // `explain_partition_golden` in `parallel_equivalence.rs`), and the
    // goldens must not depend on the ambient `ARC_THREADS`.
    let engine = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        // Pin the ambient guard knob too: a memory budget appends the
        // `governance:` note, and the goldens must not depend on it.
        .with_mem_budget(0);
    let plan = engine.explain_collection(&fx::eq1()).unwrap();
    let expected = "\
project Q(A)
  scope
    1: hash-probe on [s.C = 0] S as s (est=32)
    2: hash-probe on [r.B = s.B] R as r (est=6)
    emit: Q.A = r.A
";
    assert_eq!(plan, expected, "eq1 plan drifted:\n{plan}");
}

/// The same query over a statistics-free catalog: the planner falls back
/// to its pre-`ANALYZE` profile — flat probe estimates, same shape.
#[test]
fn explain_eq1_unanalyzed_golden() {
    let mut catalog = fx::rs_catalog(64);
    catalog.clear_stats();
    let engine = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        // Pin the ambient guard knob too: a memory budget appends the
        // `governance:` note, and the goldens must not depend on it.
        .with_mem_budget(0);
    let plan = engine.explain_collection(&fx::eq1()).unwrap();
    let expected = "\
project Q(A)
  scope
    1: hash-probe on [s.C = 0] S as s (est=1)
    2: hash-probe on [r.B = s.B] R as r (est=1)
    emit: Q.A = r.A
";
    assert_eq!(plan, expected, "eq1 unanalyzed plan drifted:\n{plan}");
}

/// Golden plan for Eq (3) — the grouped FIO aggregate: an aggregate node
/// over a single scan.
#[test]
fn explain_eq3_golden() {
    let catalog = fx::grouped_catalog(64, 8);
    let engine = Engine::new(&catalog, Conventions::set())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        // Pin the ambient guard knob too: a memory budget appends the
        // `governance:` note, and the goldens must not depend on it.
        .with_mem_budget(0);
    let plan = engine.explain_collection(&fx::eq3()).unwrap();
    let expected = "\
project Q(A, sm)
  aggregate γ r.A
    agg: Q.sm = sum(r.B)
    scope
      1: scan R as r (est=64)
      emit: Q.A = r.A
";
    assert_eq!(plan, expected, "eq3 plan drifted:\n{plan}");
}

/// Golden plan for Eq (16) — recursion: the ancestor definition becomes a
/// fixpoint node whose recursive branch probes the recursive relation.
#[test]
fn explain_eq16_golden() {
    let catalog = arc_analysis::chain_catalog(16, 0, 3);
    let engine = Engine::new(&catalog, Conventions::set())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        // Pin the ambient guard knob too: a memory budget appends the
        // `governance:` note, and the goldens must not depend on it.
        .with_mem_budget(0);
    let plan = engine.explain_program(&fx::eq16()).unwrap();
    let expected = "\
program
  fixpoint [A]
    project A(s, t)
      union
        scope
          1: scan P as p (est=16)
          emit: A.s = p.s
          emit: A.t = p.t
        scope
          1: scan P as p (est=16)
          2: hash-probe on [p.t = a2.s] A as a2 (est=1)
          emit: A.s = p.s
          emit: A.t = a2.t
";
    assert_eq!(plan, expected, "eq16 plan drifted:\n{plan}");
}

/// All three frontends (comprehension text, SQL, Datalog) execute through
/// the same planned pipeline: lower each surface form and check the
/// planned engine agrees with the forced reference, and that the planner
/// can render every frontend's lowering with auto-selected hash probes.
#[test]
fn frontends_execute_through_the_plan_layer() {
    let catalog = fx::rs_catalog(32);
    let schemas = catalog.schema_map();

    // Comprehension text and SQL: the Eq (1) join as a collection.
    let from_text =
        arc_parser::parse_collection("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
            .unwrap();
    let sql = arc_sql::arc_to_sql(&from_text, &Conventions::sql()).unwrap();
    let from_sql = arc_sql::sql_to_arc(&sql, &schemas).unwrap();
    for (name, q) in [("text", &from_text), ("sql", &from_sql)] {
        let planned = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .eval_collection(q)
            .unwrap();
        let reference = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::NestedLoop)
            .eval_collection(q)
            .unwrap();
        assert!(planned.bag_eq(&reference), "frontend {name} diverged");
        let plan = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .explain_collection(q)
            .unwrap();
        assert!(plan.contains("hash-probe"), "frontend {name}:\n{plan}");
    }

    // Datalog: the Eq (16) ancestor program through the fixpoint driver.
    let program = arc_datalog::parse_datalog(
        ".decl P(s: number, t: number)\n\
         .decl A(s: number, t: number)\n\
         A(x, y) :- P(x, y).\n\
         A(x, y) :- P(x, z), A(z, y).\n",
    )
    .unwrap();
    let arc = arc_datalog::lower_program(&program).unwrap();
    let chain = arc_analysis::chain_catalog(12, 0, 5);
    let planned = Engine::new(&chain, Conventions::souffle())
        .with_strategy(EvalStrategy::Planned)
        .eval_program(&arc)
        .unwrap();
    let reference = Engine::new(&chain, Conventions::souffle())
        .with_strategy(EvalStrategy::NestedLoop)
        .eval_program(&arc)
        .unwrap();
    assert!(
        planned.defined["A"].bag_eq(&reference.defined["A"]),
        "datalog fixpoint diverged"
    );
    let plan = Engine::new(&chain, Conventions::souffle())
        .with_strategy(EvalStrategy::Planned)
        .explain_program(&arc)
        .unwrap();
    assert!(plan.contains("fixpoint"), "{plan}");
    assert!(plan.contains("hash-probe"), "{plan}");
}
