//! Plan-cache counter audit for the bailed-decorrelation republish seam.
//!
//! When a boolean scope's decorrelation bails (non-equi correlation),
//! `scope_plan` publishes the fallback plan under the non-boolean keys
//! too — `global_store` plus a per-`Ctx` insert. Neither republish path
//! may touch the `plan.cache.hit`/`plan.cache.miss` counters: the scope
//! was planned **once**, so the first evaluation must count exactly one
//! miss per distinct scope (not one per cache key the plan lands under),
//! and a fresh-engine re-evaluation must count exactly one hit per scope
//! (the nested fallback is served by the per-`Ctx` insert, never by a
//! second global lookup).
//!
//! The assertions pin **exact** process-global counter deltas, so this
//! file deliberately contains a single `#[test]` (test binaries run one
//! at a time under `cargo test`; a single test keeps deltas
//! attributable).

use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::Engine;

#[test]
fn bailed_boolean_republish_counts_once() {
    let catalog = fx::semijoin_catalog(64, 16);
    // Non-equi correlation: `plan_scope_boolean` cannot extract join
    // keys, so the inner boolean scope bails and republishes.
    let q = fx::q("{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ∃s ∈ S [s.B > r.B]]}");
    let eval = || {
        Engine::new(&catalog, Conventions::sql())
            .with_threads(1)
            .with_decorrelate(true)
            .eval_collection(&q)
            .unwrap()
    };

    // First evaluation: two distinct scopes (the outer ∃r and the inner
    // bailed boolean ∃s) — exactly two global misses, zero hits. A third
    // miss would mean the republished plan re-entered the lookup path; a
    // hit would mean the nested fallback consulted the global cache for
    // the plan its own `Ctx` already holds.
    let before = arc_trace::snapshot();
    let first = eval();
    let delta = arc_trace::snapshot().diff(&before);
    assert!(!first.is_empty(), "fixture produces rows");
    assert_eq!(
        (
            delta.counter("plan.cache.miss"),
            delta.counter("plan.cache.hit")
        ),
        (2, 0),
        "first eval: one miss per distinct scope, republish uncounted"
    );

    // Fresh engine, same AST: both scopes served by the global cache —
    // exactly two hits, zero misses. In particular the bailed scope's
    // *boolean* key (the one `global_lookup` probes first) was published,
    // so the nested path never re-plans and never re-misses.
    let before = arc_trace::snapshot();
    let second = eval();
    let delta = arc_trace::snapshot().diff(&before);
    assert_eq!(first.rows, second.rows, "republish must not change rows");
    assert_eq!(
        (
            delta.counter("plan.cache.miss"),
            delta.counter("plan.cache.hit")
        ),
        (0, 2),
        "re-eval: one hit per scope, no double count from the republished keys"
    );
}
