//! Build-once guarantee of the decorrelated semi-join path: a correlated
//! boolean scope evaluates its body **once per evaluation** — not once
//! per outer row — and the parallel executor's workers share that single
//! build through the `Arc`'d cache.
//!
//! The assertions read `arc_engine::semi_build_runs()`, a process-global
//! counter — so this file deliberately contains a **single** `#[test]`
//! (test binaries run one at a time under `cargo test`, and a single test
//! keeps the counter deltas attributable), mirroring
//! `tests/plan_cache.rs` for the planner-run counter.

use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{semi_build_runs, Engine, EvalStrategy};

#[test]
fn semijoin_builds_once_not_per_outer_row() {
    let outer_rows = 400;
    let catalog = fx::semijoin_catalog(outer_rows, 256);
    let q = fx::not_exists_corr(256);

    // Phase 1: one evaluation, one build — 400 outer rows probe it.
    // (`with_strategy`/`with_decorrelate` pin the path explicitly: the
    // suite also runs under forced strategies and `ARC_DECORRELATE=off`,
    // which must not fail this test.)
    let before = semi_build_runs();
    let sequential = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(true)
        .eval_collection(&q)
        .unwrap();
    let builds = semi_build_runs() - before;
    assert!(!sequential.is_empty(), "fixture produces rows");
    assert_eq!(
        builds, 1,
        "the correlated scope must build once for {outer_rows} outer rows"
    );

    // Phase 2: the escape hatch runs zero builds and agrees on the bag.
    let before = semi_build_runs();
    let nested = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(false)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(
        semi_build_runs() - before,
        0,
        "ARC_DECORRELATE=off must not build semi-join sets"
    );
    assert!(sequential.bag_eq(&nested));

    // Phase 3: partitioned execution — workers probe the coordinator-
    // shared cache, so the build count stays far below the worker×morsel
    // count (racing workers may at worst each build once) and the rows
    // are identical, order included (invariant 9 extends to this path).
    let before = semi_build_runs();
    let parallel = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(4)
        .with_decorrelate(true)
        .eval_collection(&q)
        .unwrap();
    let parallel_builds = semi_build_runs() - before;
    assert!(
        parallel_builds <= 4,
        "workers must share builds through the Arc'd cache, got {parallel_builds}"
    );
    assert_eq!(sequential.rows, parallel.rows);

    // Phase 4: a fresh evaluation builds again (the cache is per
    // evaluation — relation contents may differ between evaluations).
    let before = semi_build_runs();
    Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(true)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(semi_build_runs() - before, 1);
}
