//! Workspace invariant 11: **decorrelation changes execution, never
//! results.**
//!
//! A boolean quantifier scope with pure equi-join correlation executes as
//! a build-once set-level semi/anti-join under the planned engine
//! (`ARC_DECORRELATE` on, the default) and as the per-outer-row nested
//! loop otherwise. The two paths must be *bag-identical* under every
//! strategy, convention, thread count, and NULL density — with the
//! `¬∃`-over-NULL-keys corner (the `NOT IN` shape of Fig 11) generated
//! explicitly, because that is where a naive set translation would
//! diverge from three-valued logic.
//!
//! Deterministic companions pin the NULL semantics row-for-row and golden
//! the new `EXPLAIN` operators (`semi-join on […]` / `anti-join on […]`
//! with `est=N` and a `build (once)` pipeline).

use arc_analysis::{random_catalog, random_correlated_boolean_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{Engine, EvalStrategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 11: decorrelated ≡ reference ≡ nested-planned, as bags,
    /// for generated correlated `∃`/`¬∃` queries across conventions ×
    /// strategies × `ARC_THREADS` ∈ {1, 4} × NULL-heavy instances.
    #[test]
    fn decorrelated_bag_identical_to_reference(
        seed in 0u64..400,
        keys in 0usize..3,
        inner_joins in 1usize..3,
        sels in 0usize..2,
        negated in proptest::prelude::any::<bool>(),
        with_nulls in proptest::prelude::any::<bool>(),
    ) {
        let spec = if with_nulls {
            // NULL-heavy: every third value NULL on average, so NULL keys
            // hit both the probe side and the build side routinely.
            InstanceSpec::rs_with_nulls(0.3)
        } else {
            InstanceSpec::rs()
        };
        let q = random_correlated_boolean_query(&spec, keys, inner_joins, sels, negated, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7717));
        let catalog = random_catalog(&spec, &mut rng);
        for conv in [Conventions::sql(), Conventions::set(), Conventions::souffle()] {
            let reference = Engine::new(&catalog, conv)
                .with_strategy(EvalStrategy::NestedLoop)
                .with_threads(1)
                .eval_collection(&q)
                .unwrap();
            for strategy in [
                EvalStrategy::Planned,
                EvalStrategy::NestedLoop,
                EvalStrategy::HashJoin,
            ] {
                for threads in [1usize, 4] {
                    for decorrelate in [true, false] {
                        let result = Engine::new(&catalog, conv)
                            .with_strategy(strategy)
                            .with_threads(threads)
                            .with_decorrelate(decorrelate)
                            .eval_collection(&q)
                            .unwrap();
                        prop_assert!(
                            reference.bag_eq(&result),
                            "conv {:?} strategy {:?} threads {} decorrelate {}\nquery {:?}\nreference:\n{}\ngot:\n{}",
                            conv, strategy, threads, decorrelate, q, reference, result
                        );
                    }
                }
            }
        }
    }
}

/// The `¬∃`-with-NULL-keys corner, row for row: NULLs on the probe side
/// (the outer key) and the build side (inner rows) must reproduce the
/// reference's three-valued verdicts exactly — an outer NULL key makes
/// the correlated equality `Unknown` for every inner row, so `∃` is
/// false and `¬∃` is *true* (the unguarded `NOT IN` shape; SQL users add
/// the Fig 11 guards to get SQL's `NOT IN` instead, which stays on the
/// nested path because its body is a disjunction).
#[test]
fn null_keys_under_negation_match_reference() {
    use arc_core::value::Value;
    let mut r = arc_engine::Relation::new("R", &["A"]);
    for v in [Value::Int(1), Value::Int(2), Value::Null] {
        r.push(vec![v]);
    }
    let mut s = arc_engine::Relation::new("S", &["A"]);
    for v in [Value::Int(2), Value::Null] {
        s.push(vec![v]);
    }
    let catalog = arc_engine::Catalog::new().with(r).with(s);

    let anti = fx::q("{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ¬(∃s ∈ S [s.A = r.A])]}");
    let semi = fx::q("{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ∃s ∈ S [s.A = r.A]]}");
    for conv in [Conventions::sql(), Conventions::set()] {
        for q in [&anti, &semi] {
            let reference = Engine::new(&catalog, conv)
                .with_strategy(EvalStrategy::NestedLoop)
                .with_threads(1)
                .eval_collection(q)
                .unwrap();
            let decorrelated = Engine::new(&catalog, conv)
                .with_threads(1)
                .with_decorrelate(true)
                .eval_collection(q)
                .unwrap();
            assert_eq!(
                reference.sorted_rows(),
                decorrelated.sorted_rows(),
                "conv {conv:?}"
            );
        }
    }
    // And the verdicts themselves: 1 and NULL survive ¬∃ (NULL keys can
    // never witness the existential), only 2 survives ∃.
    let anti_rows = Engine::new(&catalog, Conventions::sql())
        .with_threads(1)
        .eval_collection(&anti)
        .unwrap();
    assert_eq!(
        anti_rows.sorted_rows(),
        // Canonical key order sorts NULL first.
        vec![vec![Value::Null], vec![Value::Int(1)]]
    );
    let semi_rows = Engine::new(&catalog, Conventions::sql())
        .with_threads(1)
        .eval_collection(&semi)
        .unwrap();
    assert_eq!(semi_rows.sorted_rows(), vec![vec![Value::Int(2)]]);
}

/// Eq (17) — `NOT IN` with explicit null guards — must *not* decorrelate
/// (its scope body is a disjunction, i.e. correlated `pre_bool`), and
/// must keep returning the empty result when `S` contains a NULL.
#[test]
fn guarded_not_in_stays_on_the_nested_path() {
    let catalog = arc_engine::Catalog::new()
        .with(arc_engine::Relation::from_ints("R", &["A"], &[&[1], &[2]]))
        .with({
            let mut s = arc_engine::Relation::new("S", &["A"]);
            s.push(vec![arc_core::value::Value::Int(2)]);
            s.push(vec![arc_core::value::Value::Null]);
            s
        });
    let q = fx::eq17();
    let engine = Engine::new(&catalog, Conventions::sql()).with_threads(1);
    let plan = engine.explain_collection(&q).unwrap();
    assert!(
        !plan.contains("-join on"),
        "disjunctive correlation must not decorrelate:\n{plan}"
    );
    assert!(engine.eval_collection(&q).unwrap().is_empty());
}

/// Golden `EXPLAIN` for the decorrelated semi-join: the new operator line
/// carries the correlated key and the semi-join selectivity estimate
/// (distinct keys, MCV-capped), and the build pipeline renders beneath it
/// as an ordinary scope evaluated once — whose selective `s.C > 59` bound
/// the analyzed catalog turns into an index-range access path.
#[test]
fn explain_semijoin_golden() {
    // `analyze()` pins the statistics state explicitly: the suite runs
    // under `ARC_STATS=off` too, where registration does not auto-analyze.
    let mut catalog = fx::semijoin_catalog(64, 64);
    catalog.analyze();
    let engine = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(true)
        .with_indexes(true)
        // Pin the ambient guard knob too: a memory budget appends the
        // `governance:` note, and the goldens must not depend on it.
        .with_mem_budget(0);
    let plan = engine.explain_collection(&fx::exists_corr(64)).unwrap();
    let expected = "\
project Q(A)
  scope
    1: scan R as r (est=64)
    emit: Q.A = r.A
    [semi-join ∃]
      semi-join on [s.B = r.B] (est=4)
        build (once)
          scope
            1: index-range on [C..] S as s (est=4)
";
    assert_eq!(plan, expected, "semi-join plan drifted:\n{plan}");
}

/// Golden `EXPLAIN` for the anti-join twin, and the escape hatch: an
/// engine with decorrelation off renders the classic nested probe plan.
#[test]
fn explain_antijoin_and_escape_hatch_golden() {
    let mut catalog = fx::semijoin_catalog(64, 64);
    catalog.analyze();
    let q = fx::not_exists_corr(64);
    let on = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(true)
        .with_indexes(true)
        .with_mem_budget(0)
        .explain_collection(&q)
        .unwrap();
    let expected = "\
project Q(A)
  scope
    1: scan R as r (est=64)
    emit: Q.A = r.A
    [anti-join ¬∃]
      anti-join on [s.B = r.B] (est=4)
        build (once)
          scope
            1: index-range on [C..] S as s (est=4)
";
    assert_eq!(on, expected, "anti-join plan drifted:\n{on}");

    let off = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(false)
        .explain_collection(&q)
        .unwrap();
    assert!(
        off.contains("hash-probe on [s.B = r.B]") && !off.contains("-join on"),
        "ARC_DECORRELATE=off must render the nested probe plan:\n{off}"
    );
}

/// A malformed `ARC_DECORRELATE` value surfaces as a descriptive
/// configuration error (parse-level check; the engine wiring follows the
/// same deferred-error path as `ARC_EVAL_STRATEGY`, covered there).
#[test]
fn malformed_decorrelate_value_is_descriptive() {
    let err = arc_engine::eval::strategy::parse_decorrelate(Some("sideways")).unwrap_err();
    assert!(err.contains("ARC_DECORRELATE"), "{err}");
    assert!(err.contains("sideways"), "{err}");
    assert!(err.contains("expected"), "{err}");
}
