//! Workspace invariant 15: **span recording observes, never changes.**
//!
//! The `ARC_SPANS` knob ([`Engine::with_spans`]) and the exported
//! timeline ([`Engine::span_trace_collection`] /
//! [`Engine::span_trace_program`]) only append begin/end events into
//! bounded per-lane ring buffers; they may not change a single result
//! row under any strategy, thread count, or vector/index setting.
//!
//! The exported Chrome Trace Event Format JSON is additionally held to a
//! structural golden on the skewed range-join: it must reparse, every
//! `B` event must close with a matching `E` on its tid (Perfetto rejects
//! unbalanced tracks), a 4-thread partitioned run must name exactly 4
//! lane tracks and scatter morsel events across more than one of them,
//! and span names/op keys must join back to the `EXPLAIN ANALYZE`
//! rendering of the same plan.

use arc_analysis::{random_catalog, random_conjunctive_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_core::json::Json;
use arc_engine::{Engine, EvalStrategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Scaled-up instances so the morsel path actually engages (the default
/// `InstanceSpec::rs` stays under the partition gate).
fn big_spec(with_nulls: bool) -> InstanceSpec {
    let mut spec = if with_nulls {
        InstanceSpec::rs_with_nulls(0.2)
    } else {
        InstanceSpec::rs()
    };
    for r in &mut spec.relations {
        r.rows = 32..96;
        r.domain = 0..12;
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 15: spans on and off return identical rows across
    /// every strategy × thread count × vector/index setting.
    #[test]
    fn spans_on_off_row_identical(
        seed in 0u64..300,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in proptest::prelude::any::<bool>(),
    ) {
        let spec = big_spec(with_nulls);
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(6113));
        let catalog = random_catalog(&spec, &mut rng);
        for strategy in [
            EvalStrategy::Planned,
            EvalStrategy::NestedLoop,
            EvalStrategy::HashJoin,
        ] {
            for threads in [1usize, 4] {
                for toggles in [true, false] {
                    let run = |spans: bool| {
                        Engine::new(&catalog, Conventions::sql())
                            .with_strategy(strategy)
                            .with_threads(threads)
                            .with_vectorize(toggles)
                            .with_indexes(toggles)
                            .with_spans(spans)
                            .eval_collection(&q)
                            .unwrap()
                    };
                    let off = run(false);
                    let on = run(true);
                    prop_assert_eq!(
                        &off.rows,
                        &on.rows,
                        "strategy {:?} threads {} vector/index {}",
                        strategy,
                        threads,
                        toggles
                    );
                }
            }
        }
    }
}

/// Walk `traceEvents` simulating a per-tid stack: every `B` must close
/// with a matching `E` in order, nothing may remain open, and `X`/`M`
/// events pass through. Returns per-event `(ph, tid, name, op)` rows for
/// further assertions.
fn walk_events(j: &Json) -> Vec<(String, i64, String, Option<String>)> {
    let Json::Obj(top) = j else {
        panic!("trace is not an object")
    };
    let Json::Arr(events) = &top["traceEvents"] else {
        panic!("no traceEvents array")
    };
    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    let mut rows = Vec::new();
    for e in events {
        let Json::Obj(e) = e else {
            panic!("event is not an object")
        };
        let ph = match &e["ph"] {
            Json::Str(s) => s.clone(),
            _ => panic!("missing ph"),
        };
        let tid = match e.get("tid") {
            Some(Json::Int(t)) => *t,
            _ => -1,
        };
        let name = match &e["name"] {
            Json::Str(s) => s.clone(),
            _ => panic!("missing name"),
        };
        let op = e.get("args").and_then(|a| match a {
            Json::Obj(a) => match a.get("op") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            },
            _ => None,
        });
        match ph.as_str() {
            "B" => stacks.entry(tid).or_default().push(name.clone()),
            "E" => {
                let popped = stacks.entry(tid).or_default().pop();
                assert_eq!(
                    popped.as_deref(),
                    Some(name.as_str()),
                    "mismatched E on tid {tid}"
                );
            }
            "X" | "M" => {}
            other => panic!("unexpected ph {other}"),
        }
        rows.push((ph, tid, name, op));
    }
    for (tid, stack) in stacks {
        assert!(
            stack.is_empty(),
            "unclosed B events on tid {tid}: {stack:?}"
        );
    }
    rows
}

/// The skewed range-join widened to keep 32 rows of `R`: the narrow
/// `eq1_range` bound estimates at 7 rows — *below* `PARALLEL_MIN_ROWS`,
/// so the planner correctly keeps it sequential — while 32 keeps the
/// filtered `R` scan both the cheapest first step *and* above the
/// partition gate, so the scope partitions `R` across worker lanes.
fn wide_range(n: usize) -> arc_core::ast::Collection {
    fx::q(&format!(
        "{{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ r.A > {}]}}",
        n - 33
    ))
}

/// Structural golden: a 4-thread partitioned run of the skewed
/// range-join exports a valid, balanced Chrome trace with exactly 4
/// named lane tracks, morsel events attributed to worker lanes, and
/// names/op keys joinable to the plan.
#[test]
fn span_trace_golden_partitioned_range_join() {
    let n = 4096;
    let catalog = fx::stats_skew_catalog(n);
    let q = wide_range(n);
    let engine = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(4)
        .with_indexes(false); // pin the scan axis so the scope partitions
    let (rows, trace) = engine.span_trace_collection(&q).unwrap();
    // The last 32 R rows survive, each matching its 8-row S bucket.
    assert_eq!(rows.len(), 32 * 8, "surviving R rows × 8 S matches");

    // Well-formed JSON end to end: serialize and reparse.
    let text = trace.to_string();
    let reparsed = arc_core::json::parse(&text).expect("chrome trace must reparse");
    let events = walk_events(&reparsed);

    // Exactly `threads` lane tracks are named (broadcast guarantees all
    // four workers initialize, and init touches the lane).
    let lane_tracks = events
        .iter()
        .filter(|(ph, _, name, _)| ph == "M" && name == "thread_name")
        .count();
    assert_eq!(lane_tracks, 4, "one named track per lane:\n{text}");
    assert!(
        text.contains("lane 0 (coordinator)"),
        "coordinator track named:\n{text}"
    );

    // Morsel events are recorded per claimed morsel on the claiming
    // worker's lane. (Which lane claims how many is scheduler-dependent —
    // on a single-CPU host one worker may drain the whole queue — so the
    // assertion is on counts and lane validity, not on the distribution.)
    let morsels: Vec<i64> = events
        .iter()
        .filter(|(ph, _, name, _)| ph == "X" && name.starts_with("morsel"))
        .map(|(_, tid, _, _)| *tid)
        .collect();
    assert!(
        morsels.len() >= 4,
        "chunk-aligned partition yields one morsel event each: {morsels:?}\n{text}"
    );
    assert!(
        morsels.iter().all(|t| (0..4).contains(t)),
        "morsel events attribute to worker lanes: {morsels:?}"
    );

    // The enclosing spans exist: one query span, a scope span, and plan
    // names joinable back to the EXPLAIN rendering (`source as var`).
    let names: BTreeSet<&str> = events.iter().map(|(_, _, n, _)| n.as_str()).collect();
    assert!(names.contains("query"), "query span missing: {names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("scope [")),
        "plan-named scope span missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.contains(" as r")) && names.iter().any(|n| n.contains(" as s")),
        "step spans must carry EXPLAIN step names: {names:?}"
    );

    // Op keys join to profile/EXPLAIN ANALYZE operator ids: the same
    // scope id carries the scope-level key and both step keys.
    let ops: BTreeSet<&str> = events
        .iter()
        .filter_map(|(_, _, _, op)| op.as_deref())
        .collect();
    // (`0/-` is the query pseudo-op; the scope's key carries the real
    // AST-address scope id.)
    let scope_key = ops
        .iter()
        .find(|o| o.ends_with("/-") && **o != "0/-")
        .unwrap_or_else(|| panic!("scope-level op key missing: {ops:?}"));
    let scope_id = scope_key.trim_end_matches("/-").to_string();
    assert!(
        ops.contains(format!("{scope_id}/0").as_str())
            && ops.contains(format!("{scope_id}/1").as_str()),
        "step op keys must share the scope id {scope_id}: {ops:?}"
    );

    // ...and the trace reports its bookkeeping meta.
    let Json::Obj(top) = &reparsed else {
        unreachable!()
    };
    let Json::Obj(meta) = &top["meta"] else {
        panic!("meta missing")
    };
    assert!(meta.contains_key("dropped_spans"));
    let Json::Arr(lanes) = &meta["lanes"] else {
        panic!("lanes missing")
    };
    assert_eq!(lanes.len(), 4, "meta.lanes mirrors the named tracks");
}

/// Program traces nest everything under a single query span and stay
/// balanced across fixpoint iterations.
#[test]
fn span_trace_program_is_balanced() {
    let catalog = arc_analysis::chain_catalog(32, 5, 2);
    let engine = Engine::new(&catalog, Conventions::set()).with_threads(1);
    let (out, trace) = engine.span_trace_program(&fx::eq16()).unwrap();
    assert!(!out.defined["A"].is_empty());
    let text = trace.to_string();
    let reparsed = arc_core::json::parse(&text).expect("program trace must reparse");
    let events = walk_events(&reparsed);
    let queries = events
        .iter()
        .filter(|(ph, _, name, _)| ph == "B" && name == "query")
        .count();
    assert_eq!(queries, 1, "one enclosing query span:\n{text}");
    assert!(
        events.iter().any(|(ph, _, _, _)| ph == "B"),
        "program trace records spans"
    );
}

/// The sequential engine records the same scopes the parallel one does
/// (modulo morsels): span export works without partitioning too, and a
/// spans-off engine exports nothing.
#[test]
fn span_trace_sequential_records_scopes() {
    let n = 1024;
    let mut catalog = fx::stats_skew_catalog(n);
    catalog.analyze();
    let q = fx::eq1_range(n);
    let engine = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1);
    let (rows, trace) = engine.span_trace_collection(&q).unwrap();
    assert_eq!(rows.len(), 56);
    let events = walk_events(&trace);
    assert!(
        events
            .iter()
            .any(|(ph, _, name, _)| ph == "B" && name.starts_with("scope [")),
        "sequential run records scope spans"
    );

    // Spans off: evaluation allocates no sink at all, and the knob
    // round-trips through the builder. (The default is env-driven, so
    // the default-off assertion only holds when CI isn't re-running the
    // suite under `ARC_SPANS=on`.)
    if std::env::var_os("ARC_SPANS").is_none() {
        let default = Engine::new(&catalog, Conventions::sql());
        assert!(!default.spans().unwrap(), "ARC_SPANS defaults to off");
    }
    let off = Engine::new(&catalog, Conventions::sql()).with_spans(false);
    assert!(!off.spans().unwrap());
    assert_eq!(off.eval_collection(&q).unwrap().rows, rows.rows);
}

/// Latency quantiles are always on: an evaluation bumps the
/// `engine.query.latency` count, a partitioned evaluation additionally
/// bumps `exec.morsel.latency`, and both surface — with p50/p95/p99
/// lines — in the Prometheus-style `metrics_text()` exposition.
#[test]
fn latency_quantiles_surface_in_metrics_text() {
    let n = 4096;
    let catalog = fx::stats_skew_catalog(n);
    let q = wide_range(n);
    let before = arc_trace::snapshot();
    let out = Engine::new(&catalog, Conventions::sql())
        .with_threads(4)
        .with_indexes(false)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(out.len(), 32 * 8);
    let delta = arc_trace::snapshot().diff(&before);
    let query = delta.quantile("engine.query.latency");
    assert!(query.count >= 1, "query latency sampled: {query:?}");
    assert!(
        query.quantile(0.99) >= query.quantile(0.5),
        "quantiles are monotone: {query:?}"
    );
    let morsel = delta.quantile("exec.morsel.latency");
    assert!(
        morsel.count >= 2,
        "partitioned run samples per-morsel latency: {morsel:?}"
    );

    let text = arc_trace::metrics_text();
    for metric in ["arc_engine_query_latency", "arc_exec_morsel_latency"] {
        for q in ["0.5", "0.95", "0.99"] {
            assert!(
                text.contains(&format!("{metric}{{quantile=\"{q}\"}}")),
                "{metric} p{q} missing from exposition:\n{text}"
            );
        }
        assert!(
            text.contains(&format!("{metric}_count")),
            "{metric} count missing:\n{text}"
        );
    }
}
