//! Workspace invariant 10: **statistics change plans, never results.**
//!
//! An `ANALYZE`d catalog gives the planner MCV/histogram selectivities
//! and correlation-capped distinct counts; a statistics-free catalog
//! leaves it with row counts and prefix samples. The two may pick
//! different join orders and access paths — that is the point — but every
//! plan of a scope is bag-equivalent by construction, so results must be
//! bag-identical under every strategy (and tuple-identical under the
//! order-pinned force modes).
//!
//! The deterministic companion test pins the acceptance demonstration:
//! on the skewed fixture the statistics visibly flip the join order *and*
//! the access path, while the result rows stay the same bag.

use arc_analysis::{random_catalog, random_conjunctive_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{Engine, EvalStrategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 10: planned results with and without statistics are
    /// bag-identical under all strategies, across conventions, with and
    /// without NULLs.
    #[test]
    fn stats_on_off_bag_identical(
        seed in 0u64..400,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in proptest::prelude::any::<bool>(),
    ) {
        let spec = if with_nulls {
            InstanceSpec::rs_with_nulls(0.2)
        } else {
            InstanceSpec::rs()
        };
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(9931));
        let base = random_catalog(&spec, &mut rng);
        let mut analyzed = base.clone();
        analyzed.analyze();
        let mut bare = base;
        bare.clear_stats();
        for conv in [Conventions::sql(), Conventions::set(), Conventions::souffle()] {
            for strategy in [
                EvalStrategy::Planned,
                EvalStrategy::NestedLoop,
                EvalStrategy::HashJoin,
            ] {
                let with_stats = Engine::new(&analyzed, conv)
                    .with_strategy(strategy)
                    .eval_collection(&q)
                    .unwrap();
                let without = Engine::new(&bare, conv)
                    .with_strategy(strategy)
                    .eval_collection(&q)
                    .unwrap();
                prop_assert!(
                    with_stats.bag_eq(&without),
                    "conv {:?} strategy {:?}\nquery {:?}\nwith stats:\n{}\nwithout:\n{}",
                    conv, strategy, q, with_stats, without
                );
                if strategy != EvalStrategy::Planned {
                    // Force modes pin order: statistics may not even
                    // reorder these.
                    prop_assert_eq!(&with_stats.rows, &without.rows);
                }
            }
        }
    }
}

/// The acceptance demonstration: on the skewed fixture (unique `R.A`
/// filtered by a narrow range, small `S`), an `ANALYZE`d catalog flips
/// both the join order (the filtered big scan becomes the outer) and the
/// access path (`S` becomes the probed side) — and the results remain
/// bag-identical.
#[test]
fn stats_flip_join_order_and_access_path() {
    let n = 1024;
    let base = fx::stats_skew_catalog(n);
    let q = fx::eq1_range(n);
    let mut analyzed = base.clone();
    analyzed.analyze();
    let mut bare = base;
    bare.clear_stats();

    let explain = |catalog: &arc_engine::Catalog| {
        Engine::new(catalog, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .with_threads(1)
            .with_indexes(true)
            .explain_collection(&q)
            .unwrap()
    };
    let plan_on = explain(&analyzed);
    let plan_off = explain(&bare);

    // Without statistics the planner sees only row counts: S (64 rows)
    // scans first, R is probed on the join key.
    assert!(
        plan_off.contains("1: scan S as s")
            && plan_off.contains("2: hash-probe on [r.B = s.B] R as r"),
        "unanalyzed plan shape drifted:\n{plan_off}"
    );
    // With statistics the histogram sees `r.A > n-8` keep ~7 of 1024
    // rows: the bound R step becomes the outer side (as an index-range
    // over the ordered `A` index) and S is probed.
    assert!(
        plan_on.contains("1: index-range on [A..] R as r")
            && plan_on.contains("2: hash-probe on [r.B = s.B] S as s"),
        "analyzed plan shape drifted:\n{plan_on}"
    );
    assert_ne!(plan_on, plan_off, "statistics must change the plan");

    // …and the results must not care.
    for conv in [Conventions::sql(), Conventions::set()] {
        let with_stats = Engine::new(&analyzed, conv).eval_collection(&q).unwrap();
        let without = Engine::new(&bare, conv).eval_collection(&q).unwrap();
        assert!(
            with_stats.bag_eq(&without),
            "conv {conv:?}: stats changed the result bag"
        );
        // 7 surviving R rows, each matching 8 S rows: 56 under bag
        // semantics, 7 distinct A values either way.
        assert_eq!(
            with_stats.deduped().len(),
            7,
            "r.A > {} keeps 7 rows",
            n - 8
        );
    }
}

/// The statistics epoch invalidates cached plans at the engine level:
/// the same `Ctx`-visible scope re-plans after an `ANALYZE`, so the
/// flipped join order actually takes effect in a process that evaluated
/// the query before analyzing (regression companion to
/// `tests/plan_cache.rs`, which asserts the planner-run counters).
#[test]
fn post_analyze_plans_are_not_served_stale() {
    let n = 1024;
    let mut catalog = fx::stats_skew_catalog(n);
    catalog.clear_stats();
    let q = fx::eq1_range(n);
    let before = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    catalog.analyze();
    let after = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert!(before.bag_eq(&after));
    // The post-ANALYZE plan must be the statistics-shaped one (strategy
    // and index state pinned against the env-knob suite re-runs).
    let plan = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_indexes(true)
        .explain_collection(&q)
        .unwrap();
    assert!(
        plan.contains("1: index-range on [A..] R as r"),
        "stale plan shape:\n{plan}"
    );
}
