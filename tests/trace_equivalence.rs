//! Workspace invariant 14: **tracing observes, never changes.**
//!
//! The `ARC_TRACE` knob ([`Engine::with_trace`]) only enables clock
//! reads; the profile sink ([`Engine::profile_collection`] /
//! `explain_analyze_*`) only counts rows the evaluator was producing
//! anyway. Neither may change a single result row, under any strategy,
//! thread count, or vector/index setting — and the counts themselves
//! must be *exact*: the same profile whether gathered sequentially or
//! merged from four workers, with row counts matching a hand-counted
//! oracle on the skewed range-join fixture.

use arc_analysis::{random_catalog, random_conjunctive_query, InstanceSpec};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{Engine, EvalStrategy};
use arc_trace::OpId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scaled-up instances so the morsel path actually engages (the default
/// `InstanceSpec::rs` stays under the partition gate).
fn big_spec(with_nulls: bool) -> InstanceSpec {
    let mut spec = if with_nulls {
        InstanceSpec::rs_with_nulls(0.2)
    } else {
        InstanceSpec::rs()
    };
    for r in &mut spec.relations {
        r.rows = 32..96;
        r.domain = 0..12;
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 14: trace on and off return identical rows across
    /// every strategy × thread count × vector/index setting.
    #[test]
    fn trace_on_off_row_identical(
        seed in 0u64..300,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in proptest::prelude::any::<bool>(),
    ) {
        let spec = big_spec(with_nulls);
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(4799));
        let catalog = random_catalog(&spec, &mut rng);
        for strategy in [
            EvalStrategy::Planned,
            EvalStrategy::NestedLoop,
            EvalStrategy::HashJoin,
        ] {
            for threads in [1usize, 4] {
                for toggles in [true, false] {
                    let run = |trace: bool| {
                        Engine::new(&catalog, Conventions::sql())
                            .with_strategy(strategy)
                            .with_threads(threads)
                            .with_vectorize(toggles)
                            .with_indexes(toggles)
                            .with_trace(trace)
                            .eval_collection(&q)
                            .unwrap()
                    };
                    let off = run(false);
                    let on = run(true);
                    prop_assert_eq!(
                        &off.rows,
                        &on.rows,
                        "strategy {:?} threads {} vector/index {}",
                        strategy,
                        threads,
                        toggles
                    );
                }
            }
        }
    }
}

/// The acceptance oracle: on the ANALYZEd skewed fixture the plan is
/// `index-range R (7 rows) → hash-probe S (8 matches each)`, so every
/// actual is hand-countable — and the profile must report exactly those
/// numbers, whether gathered sequentially or merged from four workers,
/// with or without the trace knob (which only adds wall time).
#[test]
fn profile_actuals_match_hand_count() {
    let n = 1024;
    let mut catalog = fx::stats_skew_catalog(n);
    catalog.analyze();
    let q = fx::eq1_range(n);

    let profile_with = |threads: usize, trace: bool| {
        let engine = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .with_threads(threads)
            .with_indexes(true)
            .with_trace(trace);
        let (rows, profile) = engine.profile_collection(&q).unwrap();
        // 7 R rows survive `r.A > n-8`, each matching 8 S rows.
        assert_eq!(rows.len(), 56, "threads {threads}: result bag drifted");
        profile
    };
    let sequential = profile_with(1, false);

    // Exactly one scope: scope-level entry plus one entry per step.
    let scope_ids: Vec<usize> = sequential
        .ops
        .keys()
        .filter(|id| id.step.is_none())
        .map(|id| id.scope)
        .collect();
    assert_eq!(scope_ids.len(), 1, "one quantifier scope: {sequential:?}");
    let s = scope_ids[0];

    let scope = sequential.op(OpId::scope(s)).unwrap();
    assert_eq!(scope.calls, 1, "top-level scope enumerated once");
    assert_eq!(scope.rows_out, 56, "leaf survivors = result rows");

    // Step 0, index-range over R: one access-path start, 7 candidates
    // out of the binary search, no residual filter drops any.
    let step0 = sequential.op(OpId::step(s, 0)).unwrap();
    assert_eq!(
        (step0.calls, step0.rows_in, step0.rows_out),
        (1, 7, 7),
        "index-range actuals"
    );

    // Step 1, hash-probe into S: entered once per surviving R row, each
    // probe yielding its full 8-row bucket.
    let step1 = sequential.op(OpId::step(s, 1)).unwrap();
    assert_eq!(
        (step1.calls, step1.rows_in, step1.rows_out),
        (7, 56, 56),
        "hash-probe actuals"
    );

    // Counts are count-identical under worker merge and under the trace
    // knob; only nanos may differ, so compare them field by field.
    for (threads, trace) in [(4usize, false), (1, true), (4, true)] {
        let p = profile_with(threads, trace);
        for (id, expect) in &sequential.ops {
            let got = p
                .op(*id)
                .unwrap_or_else(|| panic!("threads {threads} trace {trace}: missing op {id:?}"));
            assert_eq!(
                (got.calls, got.rows_in, got.rows_out),
                (expect.calls, expect.rows_in, expect.rows_out),
                "threads {threads} trace {trace}: op {id:?} drifted"
            );
        }
        assert_eq!(
            p.ops.len(),
            sequential.ops.len(),
            "threads {threads} trace {trace}: extra operators appeared"
        );
    }

    // Trace off means no clock reads anywhere in the profile.
    assert!(
        sequential.ops.values().all(|op| op.nanos == 0),
        "trace off must not read clocks: {sequential:?}"
    );
    assert!(sequential.workers.iter().all(|w| w.busy_nanos == 0));
}

/// `EXPLAIN ANALYZE` joins the profile back onto the rendered plan:
/// per-step `act=… (est=…, q=…)` annotations, and wall time once the
/// trace knob enables clock reads.
#[test]
fn explain_analyze_renders_actuals() {
    let n = 1024;
    let mut catalog = fx::stats_skew_catalog(n);
    catalog.analyze();
    let q = fx::eq1_range(n);
    let engine = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_indexes(true);

    let analyzed = engine.explain_analyze_collection(&q).unwrap();
    // Step 0: 7 actual rows against an est of 7 (the histogram nails the
    // range); step 1: 56 rows over 7 probes = 8 per call against est 8.
    assert!(
        analyzed.contains("index-range on [A..] R as r act=7 (est=7, q=1.0) calls=1"),
        "index-range actuals missing:\n{analyzed}"
    );
    assert!(
        analyzed.contains("hash-probe on [r.B = s.B] S as s act=56 (est=8, q=1.0) calls=7"),
        "hash-probe actuals missing:\n{analyzed}"
    );
    assert!(
        analyzed.contains("act=56 calls=1"),
        "scope-level actuals missing:\n{analyzed}"
    );
    // Plain EXPLAIN renders no actuals — the annotations come from the
    // profile, not the renderer.
    let plain = engine.explain_collection(&q).unwrap();
    assert!(!plain.contains("act="), "EXPLAIN must not run the query");

    // With the trace knob on, operators additionally report wall time.
    let timed = engine
        .with_trace(true)
        .explain_analyze_collection(&q)
        .unwrap();
    assert!(
        timed.contains("time="),
        "trace on must render time:\n{timed}"
    );
}

/// The `EXPLAIN ANALYZE` misestimates footer: exact estimates render the
/// one-line all-clear (golden-pinned on the ANALYZEd skewed range-join,
/// where the histogram nails both steps), while a heavy-key join whose
/// per-probe average overshoots the actual bucket renders the offender —
/// worst first, joinable to its inline `q=` annotation.
#[test]
fn explain_analyze_footer_reports_misestimates() {
    // All-clear: the ANALYZEd skew fixture estimates exactly.
    let n = 1024;
    let mut catalog = fx::stats_skew_catalog(n);
    catalog.analyze();
    let analyzed = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_indexes(true)
        .explain_analyze_collection(&fx::eq1_range(n))
        .unwrap();
    assert!(
        analyzed.ends_with("misestimates: none (worst q=1.0)\n"),
        "exact estimates must render the all-clear footer:\n{analyzed}"
    );
    // Plain EXPLAIN carries no footer (no actuals — nothing ran).
    let plain = Engine::new(&catalog, Conventions::sql())
        .with_indexes(true)
        .explain_collection(&fx::eq1_range(n))
        .unwrap();
    assert!(
        !plain.contains("misestimates"),
        "EXPLAIN must not run:\n{plain}"
    );

    // Heavy-key skew: R's 4 rows all probe S's key 7, whose bucket holds
    // 24 rows — but the per-probe estimate is the average bucket
    // (1024 rows / 2 distinct keys = 512), a q-error of 21.3.
    let mut r = arc_engine::Relation::new("R", &["A", "B"]);
    for i in 0..4i64 {
        r.push(vec![i.into(), 7i64.into()]);
    }
    let mut s = arc_engine::Relation::new("S", &["B", "C"]);
    for i in 0..1024i64 {
        s.push(vec![(if i < 1000 { 0i64 } else { 7 }).into(), i.into()]);
    }
    let skewed = arc_engine::Catalog::new().with(r).with(s);
    let analyzed = Engine::new(&skewed, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .explain_analyze_collection(&fx::q("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B]}"))
        .unwrap();
    assert!(
        analyzed.contains("misestimates (top 3 by q-error):"),
        "footer header missing:\n{analyzed}"
    );
    assert!(
        analyzed.contains("  hash-probe on [r.B = s.B] S as s: q=21.3 (est=512, act=96, calls=4)"),
        "offending probe missing from footer:\n{analyzed}"
    );
    assert!(
        !analyzed.contains("scan R as r: q="),
        "exact steps (q=1.0) must stay out of the footer:\n{analyzed}"
    );
}

/// Semi-join probe actuals live on their own pseudo-operator (they
/// share the scope id with the build pipeline): `rows_in` = built keys,
/// `calls` = probes, `rows_out` = hits — all hand-countable on the
/// skewed semi-join fixture.
#[test]
fn semijoin_profile_counts_probes_and_hits() {
    let (n, k) = (256, 64);
    let catalog = fx::semijoin_catalog(n, k);
    let q = fx::exists_corr(k);
    let engine = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(true);
    let (rows, profile) = engine.profile_collection(&q).unwrap();
    // Keys with s.C > 59: S rows 60..63, i.e. B ∈ {12, 13, 14, 15};
    // 16 outer rows per key survive.
    assert_eq!(rows.len(), 64);

    let semi: Vec<_> = profile
        .ops
        .iter()
        .filter(|(id, _)| id.step == Some(usize::MAX))
        .collect();
    assert_eq!(semi.len(), 1, "one decorrelated scope: {profile:?}");
    let stats = semi[0].1;
    assert_eq!(stats.rows_in, 4, "built key set holds 4 keys");
    assert_eq!(stats.calls, 256, "one probe per outer row");
    assert_eq!(stats.rows_out, 64, "probe hits");

    // …and the renderer prints them on the semi-join operator line.
    let analyzed = engine.explain_analyze_collection(&q).unwrap();
    assert!(
        analyzed.contains("probes=256 hits=64"),
        "semi-join actuals missing:\n{analyzed}"
    );
}

/// The morsel executor attributes work to worker lanes: a parallel run
/// records at least one lane and as many morsels as the partition
/// produced, while the counts stay identical to the sequential profile
/// (checked exhaustively above — here we pin the lane accounting).
#[test]
fn parallel_profile_records_worker_lanes() {
    // The partition golden's fixture, scaled past several column chunks
    // (morsels are chunk-aligned under vectorized execution): eq3's scope
    // partitions its 4000-row axis scan across 4 workers.
    let catalog = fx::grouped_catalog(4000, 17);
    let q = fx::eq3();
    let engine = Engine::new(&catalog, Conventions::set()).with_threads(4);
    let (rows, profile) = engine.profile_collection(&q).unwrap();
    assert_eq!(rows.len(), 17, "one group per key");
    assert!(
        !profile.workers.is_empty(),
        "parallel run must record lanes: {profile:?}"
    );
    let morsels: u64 = profile.workers.iter().map(|w| w.morsels).sum();
    assert!(morsels >= 2, "partitioned scan runs multiple morsels");

    // A sequential engine records no lane accounting at all.
    let (_, seq) = Engine::new(&catalog, Conventions::set())
        .with_threads(1)
        .profile_collection(&q)
        .unwrap();
    assert!(seq
        .workers
        .iter()
        .all(|w| w.morsels == 0 && w.busy_nanos == 0));
}

/// Fixpoint programs profile across iterations: a recursive definition's
/// scope is enumerated once per round, so `calls` exceeds 1 and the
/// program-level `EXPLAIN ANALYZE` renders actuals inside the fixpoint.
#[test]
fn explain_analyze_program_sums_fixpoint_iterations() {
    let catalog = arc_analysis::chain_catalog(32, 5, 2);
    let engine = Engine::new(&catalog, Conventions::set()).with_threads(1);
    let (out, profile) = engine.profile_program(&fx::eq16()).unwrap();
    assert!(!out.defined["A"].is_empty());
    assert!(
        profile.ops.values().any(|op| op.calls > 1),
        "fixpoint re-enumeration must accumulate calls: {profile:?}"
    );
    let analyzed = engine.explain_analyze_program(&fx::eq16()).unwrap();
    assert!(
        analyzed.contains("act="),
        "program analyze missing actuals:\n{analyzed}"
    );
}

/// The unified registry observes the hot seams: one evaluation of the
/// semi-join fixture bumps the build/probe/hit counters by at least the
/// hand-counted amounts (deltas are `>=` — counters are process-global
/// and other tests run concurrently).
#[test]
fn registry_counters_observe_hot_seams() {
    let (n, k) = (256, 64);
    let catalog = fx::semijoin_catalog(n, k);
    let q = fx::exists_corr(k);
    let before = arc_trace::snapshot();
    let out = Engine::new(&catalog, Conventions::sql())
        .with_strategy(EvalStrategy::Planned)
        .with_threads(1)
        .with_decorrelate(true)
        .eval_collection(&q)
        .unwrap();
    assert_eq!(out.len(), 64);
    let delta = arc_trace::snapshot().diff(&before);
    assert!(delta.counter("engine.semijoin.builds") >= 1);
    assert!(delta.counter("engine.semijoin.probes") >= 256);
    assert!(delta.counter("engine.semijoin.hits") >= 64);
    assert!(delta.counter("plan.runs") >= 1, "planner runs registered");
    // The snapshot serializes through arc-core's JSON.
    arc_core::json::parse(&delta.to_json().to_string()).expect("snapshot JSON reparses");
}
