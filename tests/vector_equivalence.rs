//! Workspace invariant 12 — **vectorized execution is invisible**: for
//! any program and instance, the engine returns the same rows (same
//! order, same multiplicities — stronger than the bag-identity the
//! invariant asks for) with `ARC_VECTOR` on and off, across:
//!
//! * all three evaluation strategies (planned / nested-loop / hash-join),
//! * both convention presets (SQL three-valued and set two-valued),
//! * NULL/NaN-heavy instances,
//! * `ARC_THREADS` 1 and 4 (chunk-aligned morsels vs plain morsels),
//! * mixed-type and all-NULL columns — the validity-bitmap corners the
//!   typed kernels must get right, exercised explicitly below,
//! * chunk-boundary relation sizes (1023 / 1024 / 1025),
//! * correlated boolean scopes (the decorrelated semi-join's columnar
//!   key-set build).
//!
//! Errors must surface identically too: a filter the row path would
//! error on cannot be silently filtered by a kernel (the engine only
//! vectorizes the leading run of non-erroring constant filters).

use arc_analysis::{
    random_catalog, random_conjunctive_query, random_correlated_boolean_query, InstanceSpec,
};
use arc_core::conventions::Conventions;
use arc_core::dsl as d;
use arc_core::value::Value;
use arc_engine::{Catalog, Engine, EvalStrategy, Relation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scaled-up instances so scans clear the vectorization floor
/// (`VECTOR_MIN_ROWS`) and the partition gate.
fn big_spec(with_nulls: bool) -> InstanceSpec {
    let mut spec = if with_nulls {
        InstanceSpec::rs_with_nulls(0.25)
    } else {
        InstanceSpec::rs()
    };
    for r in &mut spec.relations {
        r.rows = 48..120;
        r.domain = 0..10;
    }
    spec
}

/// Evaluate `q` with vectorization off (the row-path reference) and on,
/// under every strategy × thread count, asserting row-identical output.
fn assert_vector_invisible(catalog: &Catalog, q: &arc_core::ast::Collection, conv: Conventions) {
    for strategy in [
        EvalStrategy::Planned,
        EvalStrategy::NestedLoop,
        EvalStrategy::HashJoin,
    ] {
        let reference = Engine::new(catalog, conv)
            .with_strategy(strategy)
            .with_vectorize(false)
            .with_threads(1)
            .eval_collection(q)
            .unwrap();
        for threads in [1usize, 4] {
            let vectorized = Engine::new(catalog, conv)
                .with_strategy(strategy)
                .with_vectorize(true)
                .with_threads(threads)
                .eval_collection(q)
                .unwrap();
            assert_eq!(
                reference.rows, vectorized.rows,
                "strategy {strategy:?} threads {threads} conv {conv:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 12 over generated conjunctive queries (joins plus the
    /// `<=`-constant selections the kernel path hoists), with and
    /// without NULLs, both conventions.
    #[test]
    fn vectorized_identical_on_conjunctive_queries(
        seed in 0u64..300,
        joins in 1usize..4,
        sels in 0usize..3,
        with_nulls in any::<bool>(),
    ) {
        let spec = big_spec(with_nulls);
        let q = random_conjunctive_query(&spec, joins, sels, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(4219));
        let catalog = random_catalog(&spec, &mut rng);
        for conv in [Conventions::sql(), Conventions::set()] {
            assert_vector_invisible(&catalog, &q, conv);
        }
    }

    /// Invariant 12 over correlated boolean scopes: the decorrelated
    /// semi/anti-join path builds its key set columnar under
    /// `ARC_VECTOR=on` — the verdicts must not move.
    #[test]
    fn vectorized_identical_on_correlated_boolean_queries(
        seed in 0u64..200,
        keys in 0usize..3,
        inner_joins in 1usize..3,
        negated in any::<bool>(),
    ) {
        let spec = big_spec(true);
        let q = random_correlated_boolean_query(&spec, keys, inner_joins, 1, negated, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(9901));
        let catalog = random_catalog(&spec, &mut rng);
        for conv in [Conventions::sql(), Conventions::set()] {
            assert_vector_invisible(&catalog, &q, conv);
        }
    }
}

/// A relation exercising every validity-bitmap corner: a mixed-type
/// column (ints, strings, floats incl. NaN, bools, NULLs), an **all-NULL**
/// column, a NaN-heavy float column, and a clean int column — at the
/// chunk-boundary sizes.
fn corner_catalog(n: i64) -> Catalog {
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                match i % 6 {
                    0 => Value::Int(i % 11),
                    1 => Value::str(format!("s{}", i % 5)),
                    2 => Value::Float(f64::NAN),
                    3 => Value::Float((i % 7) as f64 + 0.5),
                    4 => Value::Bool(i % 2 == 0),
                    _ => Value::Null,
                },
                Value::Null,
                if i % 3 == 0 {
                    Value::Float(f64::NAN)
                } else {
                    Value::Float((i % 13) as f64)
                },
                Value::Int(i % 17),
            ]
        })
        .collect();
    let mut c = Catalog::with_standard_externals();
    let mut rel = Relation::new("M".to_string(), &["A", "B", "C", "D"]);
    for row in rows {
        rel.push(row);
    }
    c.add(rel);
    c
}

/// Mixed-type / all-NULL / NaN columns at sizes straddling `CHUNK_ROWS`:
/// every kernel (comparisons against int, float, string, and NaN
/// constants; `IS [NOT] NULL`) agrees with the row path exactly.
#[test]
fn validity_bitmap_corners_match_row_path() {
    for n in [1023i64, 1024, 1025] {
        let catalog = corner_catalog(n);
        let filter_sets: Vec<Vec<arc_core::ast::Formula>> = vec![
            vec![d::le(d::col("m", "A"), d::int(5))],
            vec![d::ne(d::col("m", "A"), d::text("s2"))],
            vec![d::is_null(d::col("m", "B"))],
            vec![d::is_not_null(d::col("m", "B"))],
            vec![
                d::gt(d::col("m", "C"), d::flt(4.0)),
                d::lt(d::col("m", "D"), d::int(9)),
            ],
            vec![d::eq(d::col("m", "C"), d::flt(f64::NAN))],
            vec![d::ne(d::col("m", "C"), d::flt(f64::NAN))],
            vec![
                d::ge(d::col("m", "A"), d::flt(2.5)),
                d::is_not_null(d::col("m", "A")),
            ],
        ];
        for (fi, filters) in filter_sets.into_iter().enumerate() {
            let mut preds = vec![d::assign("Q", "D", d::col("m", "D"))];
            preds.extend(filters);
            let q = d::collection("Q", &["D"], d::exists(&[d::bind("m", "M")], d::and(preds)));
            for conv in [Conventions::sql(), Conventions::set()] {
                assert_vector_invisible(&catalog, &q, conv);
            }
            // Bag semantics must keep multiplicities, not just rows.
            let bag_off = Engine::new(&catalog, Conventions::sql())
                .with_vectorize(false)
                .eval_collection(&q)
                .unwrap();
            let bag_on = Engine::new(&catalog, Conventions::sql())
                .with_vectorize(true)
                .eval_collection(&q)
                .unwrap();
            assert_eq!(
                bag_off.bag(),
                bag_on.bag(),
                "bag drift at n={n} filter {fi}"
            );
        }
    }
}

/// Error equivalence: a vectorizable filter *after* a non-vectorizable,
/// erroring one must not hoist past it — both engines report the same
/// error (the kernel path only hoists the leading filter run).
#[test]
fn errors_surface_identically() {
    let catalog = corner_catalog(1024);
    // The unresolvable attribute errors on the first enumerated row:
    // both engines must report it.
    let erroring = d::collection(
        "Q",
        &["D"],
        d::exists(
            &[d::bind("m", "M")],
            d::and([
                d::assign("Q", "D", d::col("m", "D")),
                d::le(d::col("m", "NOPE"), d::int(3)),
            ]),
        ),
    );
    let off = Engine::new(&catalog, Conventions::sql())
        .with_vectorize(false)
        .eval_collection(&erroring)
        .unwrap_err();
    let on = Engine::new(&catalog, Conventions::sql())
        .with_vectorize(true)
        .eval_collection(&erroring)
        .unwrap_err();
    assert_eq!(off, on, "vectorization must not change reported errors");
    // Alongside a vectorizable filter the planner may order either one
    // first (a selective constant filter can legitimately mask the
    // error) — but whatever the row path produces, Ok or Err, the
    // kernel path must produce the identical outcome.
    let mixed = d::collection(
        "Q",
        &["D"],
        d::exists(
            &[d::bind("m", "M")],
            d::and([
                d::assign("Q", "D", d::col("m", "D")),
                d::le(d::col("m", "NOPE"), d::int(3)),
                d::le(d::col("m", "D"), d::int(-1)),
            ]),
        ),
    );
    for strategy in [
        EvalStrategy::Planned,
        EvalStrategy::NestedLoop,
        EvalStrategy::HashJoin,
    ] {
        let off = Engine::new(&catalog, Conventions::sql())
            .with_strategy(strategy)
            .with_vectorize(false)
            .eval_collection(&mixed);
        let on = Engine::new(&catalog, Conventions::sql())
            .with_strategy(strategy)
            .with_vectorize(true)
            .eval_collection(&mixed);
        assert_eq!(off, on, "outcome drift under {strategy:?}");
    }
}
